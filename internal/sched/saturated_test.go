package sched

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/rack"
	"repro/internal/units"
)

// overloadedTrace synthesizes a Poisson trace offered well past rack
// capacity so the backlog never drains: the regime PR 8's load-only
// refusal un-pin targets. Mixed demands (a handful of large jobs among
// small ones) make blocked heads common, which is what the backfill pass
// needs to have anything to do.
func overloadedTrace(t testing.TB, seed int64, horizon float64, servers int, demands []units.Percent) []Job {
	t.Helper()
	meanDur := 240.0
	var meanDemand float64
	for _, d := range demands {
		meanDemand += float64(d)
	}
	meanDemand /= float64(len(demands))
	// Offered load ≈ 2.2× capacity.
	rate := 2.2 * float64(servers) * 100 / (meanDur * meanDemand)
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         seed,
		Horizon:      horizon,
		Rate:         rate,
		MeanDuration: meanDur,
		Demands:      demands,
	})
	if err != nil {
		t.Fatal(err)
	}
	return JobsFromSpecs(specs)
}

// TestSaturatedTraceEquivalence is the PR 8 headline property: on traces
// where the backlog never drains, load-only-refusing policies × backfill
// on/off × both kernels give identical placements, deferrals and
// backfills, energies within 1e-6 relative — and the event kernel still
// collapses ≥3× because the backlog no longer pins it.
func TestSaturatedTraceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cases := []struct {
		name     string
		mkPolicy func() Policy
	}{
		{"roundrobin", func() Policy { return NewRoundRobin() }},
		{"leastutilized", func() Policy { return NewLeastUtilized() }},
	}
	for _, pc := range cases {
		for _, backfill := range []bool{false, true} {
			name := pc.name
			if backfill {
				name += "/backfill"
			} else {
				name += "/fifo"
			}
			t.Run(name, func(t *testing.T) {
				seed := rng.Int63()
				jobs := overloadedTrace(t, seed, 1200, 2, []units.Percent{15, 70})
				build := func() *rack.Rack {
					return eventRack(t, eventRackCfg{servers: 2, workers: 1})
				}
				cfg := TraceConfig{Dt: 1, Horizon: 1200, Backfill: backfill}
				fixed, event, ftel, etel := runBoth(t, build, jobs, pc.mkPolicy, cfg)
				if fixed.MaxQueueLen < 2 {
					t.Fatalf("trace not saturated (max queue %d); the property is vacuous", fixed.MaxQueueLen)
				}
				assertEquivalent(t, name, fixed, event, ftel, etel)
				if event.RackSteps*3 > fixed.RackSteps {
					t.Errorf("%s: only %d→%d rack steps (<3× collapse despite load-only refusal)",
						name, fixed.RackSteps, event.RackSteps)
				}
				if backfill && fixed.Backfills == 0 {
					t.Errorf("%s: backfill enabled but no job ever placed past the blocked head", name)
				}
				if !backfill && (fixed.Backfills != 0 || event.Backfills != 0) {
					t.Errorf("%s: backfill off must count zero backfills, got fixed %d event %d",
						name, fixed.Backfills, event.Backfills)
				}
			})
		}
	}
}

// TestSaturatedConservativePolicyStaysPinned: a policy that does not
// promise load-only refusals (CoolestFirst consults thermal state) must
// keep the backlog pin — the kernel falls back to per-step head retries
// and kernel.pin.backlog dominates the breakdown.
func TestSaturatedConservativePolicyStaysPinned(t *testing.T) {
	jobs := overloadedTrace(t, 9, 900, 2, []units.Percent{15, 70})
	r := eventRack(t, eventRackCfg{servers: 2, workers: 1})
	reg := obs.NewRegistry()
	res, err := RunTraceCfg(r, jobs, NewCoolestFirst(), TraceConfig{
		Dt: 1, Horizon: 900, EventStepping: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	backlogPins := reg.Counter("kernel.pin.backlog").Value()
	if backlogPins*2 < int64(res.RackSteps) {
		t.Errorf("conservative policy should stay backlog-pinned on a saturated trace: %d backlog pins of %d advances",
			backlogPins, res.RackSteps)
	}
}

// TestSaturatedPinIdentity re-checks the metrics sum identity in the new
// regime: with the backlog un-pinned the macro windows stride over queued
// jobs, and still Σ kernel.pin.* = rack advances − macro windows, in both
// stepping modes — and the sched.backfills counter mirrors
// Result.Backfills exactly.
func TestSaturatedPinIdentity(t *testing.T) {
	jobs := overloadedTrace(t, 17, 900, 2, []units.Percent{15, 70})
	for _, eventStepping := range []bool{false, true} {
		r := eventRack(t, eventRackCfg{servers: 2, workers: 1})
		reg := obs.NewRegistry()
		res, err := RunTraceCfg(r, jobs, NewLeastUtilized(), TraceConfig{
			Dt: 1, Horizon: 900, EventStepping: eventStepping, Backfill: true, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		var pins int64
		for _, name := range PinReasonNames() {
			pins += reg.Counter("kernel.pin." + name).Value()
		}
		steps := reg.Counter("kernel.steps.total").Value()
		macro := reg.Counter("kernel.windows.macro").Value()
		if pins != steps-macro {
			t.Errorf("eventStepping=%v: pin identity broken: Σ pins %d != advances %d − macro windows %d",
				eventStepping, pins, steps, macro)
		}
		if steps != int64(res.RackSteps) {
			t.Errorf("eventStepping=%v: kernel.steps.total %d != Result.RackSteps %d", eventStepping, steps, res.RackSteps)
		}
		if got := reg.Counter("sched.backfills").Value(); got != int64(res.Backfills) {
			t.Errorf("eventStepping=%v: sched.backfills %d != Result.Backfills %d", eventStepping, got, res.Backfills)
		}
	}
}

// TestSaturatedWorkerDumpInvariant: the determinism contract under the new
// code paths — for any rack worker count the saturated backfill run yields
// the same Result and a byte-identical metrics dump (run under -race in
// CI, which is what makes this a data-race proof and not just a
// determinism check).
func TestSaturatedWorkerDumpInvariant(t *testing.T) {
	jobs := overloadedTrace(t, 23, 900, 4, []units.Percent{15, 70})
	run := func(workers int) (Result, rack.Telemetry, []byte) {
		r := eventRack(t, eventRackCfg{servers: 4, workers: workers, chain: true})
		reg := obs.NewRegistry()
		res, err := RunTraceCfg(r, jobs, NewLeastUtilized(), TraceConfig{
			Dt: 1, Horizon: 900, EventStepping: true, Backfill: true, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return res, r.Telemetry(), buf.Bytes()
	}
	res1, tel1, dump1 := run(1)
	resN, telN, dumpN := run(4)
	res1.Metrics, resN.Metrics = nil, nil
	if res1 != resN {
		t.Fatalf("scheduling results differ across workers:\n1: %+v\nN: %+v", res1, resN)
	}
	if tel1 != telN {
		t.Fatalf("telemetry differs across workers:\n1: %+v\nN: %+v", tel1, telN)
	}
	if !bytes.Equal(dump1, dumpN) {
		t.Fatalf("metric dumps differ across workers:\n--- workers=1\n%s\n--- workers=4\n%s", dump1, dumpN)
	}
}
