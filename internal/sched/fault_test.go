package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// faultTraceRack builds an n-server controllered rack for fault-trace
// tests; workers exercises the parallel step fan-out.
func faultTraceRack(t *testing.T, n, workers int) *rack.Rack {
	t.Helper()
	cfg := server.T3Config()
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]rack.ServerSpec, n)
	for i := range specs {
		lc, err := control.NewLUT(table, control.DefaultLUT())
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.NoiseSeed = int64(i + 1)
		specs[i] = rack.ServerSpec{Config: c, Controller: lc}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: workers, ReliabilitySampleEvery: 15})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func faultTraceJobs(t *testing.T, horizon float64) []Job {
	t.Helper()
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed: 7, Horizon: horizon, Rate: 0.05, MeanDuration: 120,
		Demands: []units.Percent{20, 40, 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return JobsFromSpecs(specs)
}

func TestFaultScheduleValidatedAgainstRack(t *testing.T) {
	r := faultTraceRack(t, 2, 1)
	bad := &fault.Schedule{Events: []fault.Event{{Kind: fault.PSUFail, Server: 9, At: 10}}}
	_, err := RunTraceCfg(r, nil, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 100, Faults: bad})
	if err == nil {
		t.Fatal("out-of-range fault target must be rejected up front")
	}
}

// TestPSUFailKillsAndRequeues: a server going dark mid-run must kill its
// job, requeue it at the backlog head, and complete it elsewhere (or after
// power returns) — with the destroyed progress accounted.
func TestPSUFailKillsAndRequeues(t *testing.T) {
	r := faultTraceRack(t, 2, 1)
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 200, Demand: 60},
		{ID: 1, Arrival: 0, Duration: 200, Demand: 60},
	}
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.PSUFail, Server: 0, At: 50, Clear: 300},
	}}
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{
		Dt: 1, Horizon: 700, Faults: sch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeued != 1 {
		t.Fatalf("requeued %d, want 1", res.Requeued)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d, want 0 under requeue", res.Lost)
	}
	// The killed job had run ~50 s when slot 0 went dark.
	if res.LostJobSeconds < 49 || res.LostJobSeconds > 51 {
		t.Fatalf("lost job-seconds %.1f, want ≈50", res.LostJobSeconds)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d, want 2 (requeued job must finish)", res.Completed)
	}
	// Placed is net of the kill: two initial − one kill + one re-placement.
	if res.Placed != 2 {
		t.Fatalf("placed %d, want net 2", res.Placed)
	}
}

// TestDropOnFaultAbandons: the same scenario under DropOnFault loses the
// job outright — its whole duration is destroyed work.
func TestDropOnFaultAbandons(t *testing.T) {
	r := faultTraceRack(t, 2, 1)
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 200, Demand: 60},
		{ID: 1, Arrival: 0, Duration: 200, Demand: 60},
	}
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.PSUFail, Server: 0, At: 50, Clear: 300},
	}}
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{
		Dt: 1, Horizon: 700, Faults: sch, DropOnFault: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 || res.Requeued != 0 {
		t.Fatalf("lost/requeued %d/%d, want 1/0", res.Lost, res.Requeued)
	}
	if res.LostJobSeconds != 200 {
		t.Fatalf("lost job-seconds %.1f, want the full 200", res.LostJobSeconds)
	}
	if res.Completed != 1 {
		t.Fatalf("completed %d, want 1", res.Completed)
	}
}

// TestNoPlacementOnUnhealthy: while a slot is dark the policies must route
// around it; the filtered ServerView and the runner's hard check agree.
func TestNoPlacementOnUnhealthy(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.ServerTrip, Server: 0, At: 0, Clear: 500},
	}}
	for _, p := range []Policy{NewRoundRobin(), NewLeastUtilized(), NewCoolestFirst()} {
		r := faultTraceRack(t, 2, 1)
		jobs := []Job{
			{ID: 0, Arrival: 10, Duration: 50, Demand: 40},
			{ID: 1, Arrival: 20, Duration: 50, Demand: 40},
		}
		res, err := RunTraceCfg(r, jobs, p, TraceConfig{Dt: 1, Horizon: 200, Faults: sch})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		// Slot 1 is the only healthy slot and fits one 40%% job at a time;
		// both must complete there without a runner health violation.
		if res.Completed != 2 {
			t.Fatalf("%s completed %d, want 2", p.Name(), res.Completed)
		}
	}
}

// TestZeroStepFaultWindowIsNoOp: a window whose apply and clear pin to the
// same grid step must leave the run byte-identical to no fault at all.
func TestZeroStepFaultWindowIsNoOp(t *testing.T) {
	jobs := faultTraceJobs(t, 400)
	run := func(sch *fault.Schedule) Result {
		r := faultTraceRack(t, 3, 1)
		res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 600, Faults: sch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nil)
	zero := run(&fault.Schedule{Events: []fault.Event{
		{Kind: fault.PSUFail, Server: 0, At: 100.2, Clear: 100.8}, // both pin to step 101
	}})
	if !reflect.DeepEqual(ref, zero) {
		t.Fatalf("zero-step window perturbed the run:\nref:  %+v\ngot:  %+v", ref, zero)
	}
}

// TestEmptyFaultScheduleBitIdentical: nil schedule, empty schedule and the
// pre-fault RunTrace path must all agree exactly, in both stepping modes.
func TestEmptyFaultScheduleBitIdentical(t *testing.T) {
	jobs := faultTraceJobs(t, 400)
	for _, event := range []bool{false, true} {
		run := func(sch *fault.Schedule) (Result, rack.Telemetry) {
			r := faultTraceRack(t, 3, 1)
			res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{
				Dt: 1, Horizon: 600, EventStepping: event, Faults: sch,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, r.Telemetry()
		}
		refR, refT := run(nil)
		emptyR, emptyT := run(&fault.Schedule{})
		if !reflect.DeepEqual(refR, emptyR) || !reflect.DeepEqual(refT, emptyT) {
			t.Fatalf("event=%v: empty schedule diverged from nil", event)
		}
	}
}

// randomSchedule builds a valid random fault plan over an n-server rack:
// a few windowed and permanent events of every kind except ambient/CRAC
// excursions that trip servers outright (those end runs in kill storms
// that are still deterministic but make the test slow).
func randomSchedule(rng *rand.Rand, n int, horizon float64) *fault.Schedule {
	var events []fault.Event
	kinds := []fault.Kind{
		fault.FanStick, fault.FanFail, fault.PSUDroop, fault.PSUFail,
		fault.ServerTrip, fault.AmbientExcursion, fault.CRACOutage, fault.ChillerDegraded,
	}
	m := 2 + rng.Intn(3)
	for i := 0; i < m; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ev := fault.Event{Kind: k, Server: rng.Intn(n), At: rng.Float64() * horizon * 0.6}
		if rng.Intn(2) == 0 {
			ev.Clear = ev.At + 30 + rng.Float64()*horizon*0.3
		}
		switch k {
		case fault.FanStick, fault.FanFail:
			ev.Fan = rng.Intn(2)
		case fault.PSUDroop, fault.ChillerDegraded:
			ev.Severity = 0.05 + 0.2*rng.Float64()
		case fault.AmbientExcursion:
			ev.Severity = 2 + 3*rng.Float64()
			if rng.Intn(2) == 0 {
				ev.Server = -1
			}
		case fault.CRACOutage:
			ev.Severity = 3 + 3*rng.Float64()
		}
		events = append(events, ev)
	}
	s := &fault.Schedule{Events: events}
	s.Sort()
	return s
}

// TestFaultDeterminism is the PR's headline contract: randomized fault
// schedules, multiple policies, both stepping modes — the scheduler result
// AND the full rack telemetry must be byte-identical for every worker
// count. Run under -race this also proves the fan-out stays data-race free
// with faults applied mid-run.
func TestFaultDeterminism(t *testing.T) {
	const n = 4
	horizon := 500.0
	jobs := faultTraceJobs(t, 400)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		sch := randomSchedule(rng, n, horizon)
		for _, mkPolicy := range []func() Policy{
			func() Policy { return NewRoundRobin() },
			func() Policy { return NewLeastUtilized() },
			func() Policy { return NewCoolestFirst() },
		} {
			for _, event := range []bool{false, true} {
				run := func(workers int) (Result, rack.Telemetry) {
					r := faultTraceRack(t, n, workers)
					res, err := RunTraceCfg(r, jobs, mkPolicy(), TraceConfig{
						Dt: 1, Horizon: horizon, EventStepping: event,
						SampleEvery: 15, Faults: sch,
					})
					if err != nil {
						t.Fatalf("trial %d event=%v: %v", trial, event, err)
					}
					return res, r.Telemetry()
				}
				refR, refT := run(1)
				for _, workers := range []int{2, 4} {
					gotR, gotT := run(workers)
					if !reflect.DeepEqual(refR, gotR) {
						t.Fatalf("trial %d event=%v workers=%d: result differs\nserial:   %+v\nparallel: %+v",
							trial, event, workers, refR, gotR)
					}
					if !reflect.DeepEqual(refT, gotT) {
						t.Fatalf("trial %d event=%v workers=%d: telemetry differs\nserial:   %+v\nparallel: %+v",
							trial, event, workers, refT, gotT)
					}
				}
			}
		}
	}
}

// TestEventVsFixedWithFaultWindow: a windowed, non-tripping fault pins its
// servers to fixed-dt, so the event-stepped run must reproduce the
// fixed-dt scheduler result exactly through the fault window.
func TestEventVsFixedWithFaultWindow(t *testing.T) {
	jobs := faultTraceJobs(t, 400)
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FanStick, Server: 0, Fan: 0, At: 120, Clear: 360},
		{Kind: fault.PSUDroop, Server: 1, At: 200, Clear: 400, Severity: 0.1},
	}}
	run := func(event bool) Result {
		r := faultTraceRack(t, 3, 1)
		res, err := RunTraceCfg(r, jobs, NewLeastUtilized(), TraceConfig{
			Dt: 1, Horizon: 600, EventStepping: event, SampleEvery: 15, Faults: sch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed := run(false)
	evented := run(true)
	if fixed.Completed != evented.Completed || fixed.Placed != evented.Placed ||
		fixed.Requeued != evented.Requeued || fixed.Lost != evented.Lost ||
		fixed.MeanWaitSec != evented.MeanWaitSec {
		t.Fatalf("stepping modes disagree through a fault window:\nfixed: %+v\nevent: %+v", fixed, evented)
	}
	if evented.RackSteps >= fixed.RackSteps {
		t.Fatalf("event stepping did not collapse steps: %d >= %d", evented.RackSteps, fixed.RackSteps)
	}
}
