package sched

import "repro/internal/obs"

// pinReason labels why the event kernel advanced exactly one grid step
// instead of a macro window — the attribution ROADMAP's "kill the
// remaining fixed-dt cliffs" needs. Exactly one reason is charged per
// single-step advance, at the moment the kernel declines the window, so
// the per-reason counts always sum to (total rack advances − macro
// windows) by construction, in both stepping modes.
type pinReason int

const (
	// pinFixedDt: the fixed-dt reference kernel — every step is pinned by
	// mode, keeping the sum identity meaningful without event stepping.
	pinFixedDt pinReason = iota
	// pinBacklog: non-empty backlog; the FIFO head retries every step.
	pinBacklog
	// pinTripGuard: a fault run with some live server inside the
	// trip-guard band — trips must latch on their exact step.
	pinTripGuard
	// pinArrival: the next job arrival lands on the very next step.
	pinArrival
	// pinCompletion: a running job completes at the next step.
	pinCompletion
	// pinFaultEdge: a pinned fault inject/clear fires at the next step.
	pinFaultEdge
	// pinController: a fan controller's quiet-horizon promise expires at
	// the next step (holdoff or poll boundary), fans settled.
	pinController
	// pinFanSlew: as pinController, but some powered slot's fans are still
	// slewing — the window is held shut while conductances move.
	pinFanSlew
	// pinNoPromise: some controller implements no quiet horizon
	// (control.HorizonPromiser), collapsing every window to one step.
	pinNoPromise
	// pinSample: the TraceConfig.SampleEvery telemetry grid.
	pinSample
	// pinHorizonEnd: the trace window itself ends at the next step.
	pinHorizonEnd
	pinReasons // count
)

// pinNames maps reasons to the "kernel.pin.<reason>" metric suffixes (the
// README's pin-reason taxonomy table mirrors these).
var pinNames = [pinReasons]string{
	pinFixedDt:    "fixed-dt",
	pinBacklog:    "backlog",
	pinTripGuard:  "trip-guard",
	pinArrival:    "arrival",
	pinCompletion: "completion",
	pinFaultEdge:  "fault-edge",
	pinController: "controller",
	pinFanSlew:    "fan-slew",
	pinNoPromise:  "no-promise",
	pinSample:     "sample",
	pinHorizonEnd: "horizon-end",
}

// PinReasonNames returns the metric suffixes of the pin-reason taxonomy,
// in attribution-priority order; "kernel.pin." + name is the counter each
// appears under. Exported for evalctl's breakdown table and the identity
// tests.
func PinReasonNames() []string {
	out := make([]string, pinReasons)
	copy(out, pinNames[:])
	return out
}

// windowLenBounds are the kernel.window.len histogram buckets: powers of
// two up to 16384 steps (a 1 s grid's 4.5-hour window), +Inf implicit.
func windowLenBounds() []float64 { return obs.ExpBuckets(1, 2, 15) }

// runMetrics carries one trace run's metric handles, fetched once at run
// start so the per-step hot path never touches the registry's lock. With
// no registry attached every handle is nil and every call below is a
// nil-receiver no-op — the zero-cost default the golden tables pin.
type runMetrics struct {
	steps     *obs.Counter // kernel.steps.total: rack advances (== RackSteps)
	gridSteps *obs.Counter // kernel.grid.steps: fixed-dt steps crossed (Σ window)
	macroWins *obs.Counter // kernel.windows.macro: advances with window > 1
	winLen    *obs.Histogram
	pins      [pinReasons]*obs.Counter

	submitted  *obs.Counter
	placements *obs.Counter // placement events (a requeued job counts again)
	backfills  *obs.Counter // placements past a blocked head (subset of placements)
	deferrals  *obs.Counter
	completed  *obs.Counter
	requeued   *obs.Counter
	dropped    *obs.Counter
	backlogHW  *obs.Gauge
}

func newRunMetrics(reg *obs.Registry) runMetrics {
	if reg == nil {
		// All-nil handles. Returning before the name concatenations keeps
		// the uninstrumented run's allocation profile untouched.
		return runMetrics{}
	}
	m := runMetrics{
		steps:      reg.Counter("kernel.steps.total"),
		gridSteps:  reg.Counter("kernel.grid.steps"),
		macroWins:  reg.Counter("kernel.windows.macro"),
		winLen:     reg.Histogram("kernel.window.len", windowLenBounds()),
		submitted:  reg.Counter("sched.jobs.submitted"),
		placements: reg.Counter("sched.placements"),
		backfills:  reg.Counter("sched.backfills"),
		deferrals:  reg.Counter("sched.deferrals"),
		completed:  reg.Counter("sched.jobs.completed"),
		requeued:   reg.Counter("sched.kills.requeued"),
		dropped:    reg.Counter("sched.kills.dropped"),
		backlogHW:  reg.Gauge("sched.backlog.highwater"),
	}
	for i := range m.pins {
		m.pins[i] = reg.Counter("kernel.pin." + pinNames[i])
	}
	return m
}

// advance charges one rack advance spanning `window` grid steps, pinned by
// `reason` when the window is a single step.
func (m *runMetrics) advance(window int, reason pinReason) {
	m.steps.Inc()
	m.gridSteps.Add(int64(window))
	m.winLen.Observe(float64(window))
	if window > 1 {
		m.macroWins.Inc()
	} else {
		m.pins[reason].Inc()
	}
}
