package sched

import (
	"math/rand"
	"testing"

	"repro/internal/control"
	"repro/internal/obs"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// bangRack builds a rack of bang-bang-controlled servers with sensor noise
// off: the promiser's 6σ noise allowance then vanishes and the two kernels
// read identical temperatures at every shared instant, making the
// equivalence exact rather than tolerance-based. (The shipped configs keep
// noise on; there the event kernel's skipped ticks shift the noise-draw
// phase and only the evalctl pin-share acceptance applies.)
func bangRack(t testing.TB, servers, workers int) *rack.Rack {
	t.Helper()
	specs := make([]rack.ServerSpec, servers)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.TempNoise = 0
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		bb, err := control.NewBangBang(control.DefaultBangBang())
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = rack.ServerSpec{Config: cfg, Controller: bb}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBangBangEventMatchesFixed: the tentpole's controller half end to
// end. Bang-bang promises its decision cadence and the band extension
// stretches it further, so a rack that PR 7 pinned to fixed-dt
// (kernel.pin.no-promise on every step) now collapses ≥3× with identical
// scheduling, fan-change and energy outcomes.
func TestBangBangEventMatchesFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	jobs := randomTrace(t, rng, 1800, 3, 0.3)
	build := func() *rack.Rack { return bangRack(t, 3, 1) }
	cfg := TraceConfig{Dt: 1, Horizon: 1800}
	fixed, event, ftel, etel := runBoth(t, build, jobs, func() Policy { return NewRoundRobin() }, cfg)
	assertEquivalent(t, "bangbang", fixed, event, ftel, etel)
	if ftel.FanChanges == 0 {
		t.Fatal("trace never moved the fans; the fan-change equivalence is vacuous")
	}
	if event.RackSteps*3 > fixed.RackSteps {
		t.Errorf("bang-bang rack should collapse ≥3×, got %d→%d rack steps", fixed.RackSteps, event.RackSteps)
	}
}

// TestBangBangNoPromisePinRetired: with the promiser in place the
// no-promise pin must vanish entirely on an all-bang-bang rack — wakes at
// the decision cadence are charged to the controller reason instead.
func TestBangBangNoPromisePinRetired(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	jobs := randomTrace(t, rng, 1200, 2, 0.3)
	r := bangRack(t, 2, 1)
	reg := obs.NewRegistry()
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{
		Dt: 1, Horizon: 1200, EventStepping: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("kernel.pin.no-promise").Value(); v != 0 {
		t.Errorf("kernel.pin.no-promise must be retired on a bang-bang rack, got %d", v)
	}
	if v := reg.Counter("kernel.windows.macro").Value(); v == 0 {
		t.Error("a promising bang-bang rack must open macro windows")
	}
	if res.RackSteps*2 > 1200 {
		t.Errorf("event kernel took %d of 1200 steps — the cadence promise alone should at least halve it", res.RackSteps)
	}
}
