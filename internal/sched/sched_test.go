package sched

import (
	"testing"

	"repro/internal/control"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

func views(loads, temps []float64) []ServerView {
	out := make([]ServerView, len(loads))
	for i := range loads {
		out[i] = ServerView{
			Index:      i,
			Load:       units.Percent(loads[i]),
			Free:       units.Percent(100 - loads[i]),
			MaxCPUTemp: units.Celsius(temps[i]),
		}
	}
	return out
}

func TestRoundRobinRotatesAndSkipsFull(t *testing.T) {
	p := NewRoundRobin()
	j := Job{Demand: 30}
	v := views([]float64{0, 0, 90}, []float64{50, 50, 50})
	if got := p.Place(j, v); got != 0 {
		t.Fatalf("first placement on %d, want 0", got)
	}
	if got := p.Place(j, v); got != 1 {
		t.Fatalf("second placement on %d, want 1", got)
	}
	// Slot 2 has only 10% free: the cursor must skip it back to 0.
	if got := p.Place(j, v); got != 0 {
		t.Fatalf("third placement on %d, want 0 (slot 2 full)", got)
	}
	if got := p.Place(Job{Demand: 99}, views([]float64{50, 50, 50}, []float64{0, 0, 0})); got != -1 {
		t.Fatalf("unplaceable job got slot %d, want -1", got)
	}
}

func TestLeastUtilizedPicksLowestLoad(t *testing.T) {
	p := NewLeastUtilized()
	v := views([]float64{40, 10, 10, 80}, []float64{30, 60, 60, 30})
	// Ties break to the lowest index.
	if got := p.Place(Job{Demand: 20}, v); got != 1 {
		t.Fatalf("placed on %d, want 1", got)
	}
}

func TestCoolestFirstPicksLowestTemp(t *testing.T) {
	p := NewCoolestFirst()
	v := views([]float64{0, 0, 0}, []float64{55, 42, 48})
	if got := p.Place(Job{Demand: 20}, v); got != 1 {
		t.Fatalf("placed on %d, want 1 (coolest)", got)
	}
	// The coolest server without capacity must be skipped.
	v = views([]float64{0, 95, 0}, []float64{55, 42, 48})
	if got := p.Place(Job{Demand: 20}, v); got != 2 {
		t.Fatalf("placed on %d, want 2 (coolest feasible)", got)
	}
}

func TestLeakageAwarePrefersColdAisle(t *testing.T) {
	cold := server.T3Config()
	cold.Ambient = 21
	hot := server.T3Config()
	hot.Ambient = 30
	p, err := NewLeakageAware([]server.Config{hot, cold}, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	// Equal load on both: the cold-aisle server's marginal fan+leak power
	// is lower, so the job must go there despite the higher index.
	v := views([]float64{40, 40}, []float64{60, 50})
	if got := p.Place(Job{Demand: 40}, v); got != 1 {
		t.Fatalf("placed on %d, want 1 (cold aisle)", got)
	}
}

func TestLeakageAwareSharesTableBuilds(t *testing.T) {
	cfg := server.T3Config()
	a, b := cfg, cfg
	a.NoiseSeed, b.NoiseSeed = 1, 999 // noise cannot affect steady state
	p, err := NewLeakageAware([]server.Config{a, b}, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	if p.tables[0] != p.tables[1] {
		t.Fatal("identical physics configs must share one table")
	}
}

// traceRack builds a 3-server rack with fixed fan speeds (no controller)
// for trace-runner tests.
func traceRack(t *testing.T) *rack.Rack {
	t.Helper()
	specs := make([]rack.ServerSpec, 3)
	for i := range specs {
		cfg := server.T3Config()
		cfg.NoiseSeed = int64(i + 1)
		specs[i] = rack.ServerSpec{Config: cfg}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunTraceAccounting(t *testing.T) {
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 30, Demand: 60},
		{ID: 1, Arrival: 0, Duration: 30, Demand: 60},
		{ID: 2, Arrival: 0, Duration: 30, Demand: 60},
		{ID: 3, Arrival: 0, Duration: 10, Demand: 60}, // must queue: 3 servers busy
		{ID: 4, Arrival: 200, Duration: 1e9, Demand: 50},
	}
	res, err := RunTrace(traceRack(t), jobs, NewRoundRobin(), 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 5 || res.Placed != 5 {
		t.Fatalf("submitted/placed %d/%d, want 5/5", res.Submitted, res.Placed)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d, want 4 (job 4 outlives the horizon)", res.Completed)
	}
	// Job 3 waited ~30 s behind three 30 s jobs; the other four placed
	// immediately, so the mean wait is ≈ 31/5.
	if res.MeanWaitSec < 5 || res.MeanWaitSec > 8 {
		t.Fatalf("mean wait %.2f s, want ≈6", res.MeanWaitSec)
	}
	if res.MaxQueueLen < 2 {
		t.Fatalf("max queue %d, want ≥2 (four simultaneous arrivals on 3 servers)", res.MaxQueueLen)
	}
}

func TestRunTraceRejectsUnsorted(t *testing.T) {
	jobs := []Job{{Arrival: 10}, {Arrival: 0}}
	if _, err := RunTrace(traceRack(t), jobs, NewRoundRobin(), 1, 100); err == nil {
		t.Fatal("unsorted jobs must be rejected")
	}
	if _, err := RunTrace(traceRack(t), nil, NewRoundRobin(), 0, 100); err == nil {
		t.Fatal("non-positive dt must be rejected")
	}
}

func TestRunTraceFIFOHeadBlocks(t *testing.T) {
	// A huge head job must hold back a small one that would fit, keeping
	// placement order fair and deterministic.
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 50, Demand: 80},
		{ID: 1, Arrival: 0, Duration: 50, Demand: 80},
		{ID: 2, Arrival: 0, Duration: 50, Demand: 80},
		{ID: 3, Arrival: 1, Duration: 50, Demand: 90}, // blocks: nothing free
		{ID: 4, Arrival: 1, Duration: 5, Demand: 10},  // would fit, must wait behind 3
	}
	res, err := RunTrace(traceRack(t), jobs, NewLeastUtilized(), 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 5 || res.Completed != 5 {
		t.Fatalf("placed/completed %d/%d, want 5/5", res.Placed, res.Completed)
	}
	// Job 4's wait must be at least job 3's (FIFO): both ≈50 s, so the
	// mean over five jobs is ≈20 s; immediate placement of 4 would show
	// ≈10 s.
	if res.MeanWaitSec < 15 {
		t.Fatalf("mean wait %.1f s: small job overtook the blocked FIFO head", res.MeanWaitSec)
	}
}

func TestJobsFromSpecs(t *testing.T) {
	specs := []loadgen.JobSpec{{Arrival: 1, Duration: 2, Demand: 30}, {Arrival: 4, Duration: 5, Demand: 60}}
	jobs := JobsFromSpecs(specs)
	if len(jobs) != 2 || jobs[0].ID != 0 || jobs[1].ID != 1 || jobs[1].Demand != 60 {
		t.Fatalf("conversion wrong: %+v", jobs)
	}
}

// TestPoliciesWithControllersEndToEnd smoke-runs every policy over a rack
// whose servers each carry a LUT fan controller, the configuration the
// rack experiment uses.
func TestPoliciesWithControllersEndToEnd(t *testing.T) {
	cfg := server.T3Config()
	table, err := lut.Build(cfg, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	la, err := NewLeakageAware([]server.Config{cfg, cfg}, lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{NewRoundRobin(), NewLeastUtilized(), NewCoolestFirst(), la} {
		specs := make([]rack.ServerSpec, 2)
		for i := range specs {
			lc, err := control.NewLUT(table, control.DefaultLUT())
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.NoiseSeed = int64(i + 1)
			specs[i] = rack.ServerSpec{Config: c, Controller: lc}
		}
		r, err := rack.New(rack.Config{Servers: specs, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		jobs := []Job{{ID: 0, Arrival: 0, Duration: 60, Demand: 50}, {ID: 1, Arrival: 10, Duration: 60, Demand: 50}}
		res, err := RunTrace(r, jobs, p, 1, 120)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Completed != 2 {
			t.Fatalf("%s completed %d, want 2", p.Name(), res.Completed)
		}
		if tel := r.Telemetry(); tel.TotalEnergyKWh <= 0 {
			t.Fatalf("%s: no energy recorded", p.Name())
		}
	}
}

// TestRunTraceNonIntegerDtWindow pins the drift fix: with dt=0.1 over a
// 36 s horizon the runner must take exactly 360 steps — the accumulated
// `elapsed += dt` loop it replaces took 361 (Σ360×0.1 < 36 in floats) and
// overran the measured window.
func TestRunTraceNonIntegerDtWindow(t *testing.T) {
	r := traceRack(t)
	if _, err := RunTrace(r, nil, NewRoundRobin(), 0.1, 36); err != nil {
		t.Fatal(err)
	}
	if now := r.Now(); now > 36.05 || now < 35.95 {
		t.Fatalf("rack advanced %.10f s, want 36 (step-count drift)", now)
	}
}

// TestRunTraceAdmitsFinalStepArrivals pins the admission rule: a job
// arriving inside the last step of the window must still be admitted and
// placed, not silently stranded in Submitted.
func TestRunTraceAdmitsFinalStepArrivals(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 9.5, Duration: 100, Demand: 30}}
	res, err := RunTrace(traceRack(t), jobs, NewRoundRobin(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 {
		t.Fatalf("placed %d, want 1 (arrival in the final dt)", res.Placed)
	}
}
