// Package sched puts a job dispatcher on top of internal/rack: jobs with
// an arrival time, a duration and a CPU demand are placed onto servers by
// a pluggable placement policy, and the rack physics decides what the
// placement costs in energy and temperature.
//
// The paper's server-level result — leakage- and fan-aware control beats
// reactive and static policies — only pays off at scale when the
// dispatcher also knows which machine is coolest and cheapest to heat up.
// The policies here span that design space: RoundRobin and LeastUtilized
// are thermally blind baselines, CoolestFirst is the reactive thermal
// heuristic, and LeakageAware reuses the paper's own steady-state
// machinery (internal/lut over server.SteadyTemp) to place each job where
// the predicted marginal leakage+fan power is lowest.
//
// Scheduling decisions run serially on the dispatcher goroutine; only the
// rack step underneath fans out. Results are therefore deterministic for
// any worker count.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// Job is one schedulable unit of work.
type Job struct {
	ID       int
	Arrival  float64       // seconds from trace start
	Duration float64       // service time, seconds
	Demand   units.Percent // CPU demand on the server that runs it
}

// JobsFromSpecs converts a loadgen trace into scheduler jobs, assigning
// sequential IDs in arrival order.
func JobsFromSpecs(specs []loadgen.JobSpec) []Job {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = Job{ID: i, Arrival: s.Arrival, Duration: s.Duration, Demand: s.Demand}
	}
	return jobs
}

// ServerView is the dispatcher's telemetry snapshot of one server at a
// placement instant.
type ServerView struct {
	Index      int // slot in the rack
	Name       string
	Load       units.Percent // demand already scheduled on it
	Free       units.Percent // remaining capacity (100 − Load)
	MaxCPUTemp units.Celsius // hottest true die temperature
	InletTemp  units.Celsius // current CPU inlet air temperature
}

// Policy decides where a job runs. Place returns the chosen rack slot, or
// -1 to leave the job queued (e.g. no server has the capacity). Views are
// presented in rack order; implementations must be deterministic, breaking
// ties by the lowest index.
type Policy interface {
	Name() string
	// Reset clears internal state so a policy can be reused across runs.
	Reset()
	Place(j Job, views []ServerView) int
}

// fits reports whether the job's demand fits server v's free capacity.
func fits(v ServerView, j Job) bool { return v.Free >= j.Demand }

// ---------------------------------------------------------------------------
// Round-robin

// RoundRobin rotates placements across servers regardless of their state —
// the thermally blind baseline every datacenter dispatcher starts from.
type RoundRobin struct{ next int }

// NewRoundRobin returns the rotating baseline policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Reset implements Policy.
func (p *RoundRobin) Reset() { p.next = 0 }

// Place implements Policy: the first server at or after the cursor with
// enough capacity.
func (p *RoundRobin) Place(j Job, views []ServerView) int {
	n := len(views)
	for k := 0; k < n; k++ {
		v := views[(p.next+k)%n]
		if fits(v, j) {
			p.next = (v.Index + 1) % n
			return v.Index
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Least-utilized

// LeastUtilized places each job on the server with the most free capacity,
// the classic load-balancing heuristic (still thermally blind).
type LeastUtilized struct{}

// NewLeastUtilized returns the load-balancing policy.
func NewLeastUtilized() *LeastUtilized { return &LeastUtilized{} }

// Name implements Policy.
func (p *LeastUtilized) Name() string { return "least-utilized" }

// Reset implements Policy.
func (p *LeastUtilized) Reset() {}

// Place implements Policy.
func (p *LeastUtilized) Place(j Job, views []ServerView) int {
	best := -1
	var bestLoad units.Percent
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.Load < bestLoad {
			best = v.Index
			bestLoad = v.Load
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Coolest-server-first

// CoolestFirst places each job on the feasible server with the lowest die
// temperature — the reactive thermal heuristic. On a heterogeneous rack
// this naturally prefers cold-aisle machines until load warms them past
// their hot-aisle peers.
type CoolestFirst struct{}

// NewCoolestFirst returns the reactive thermal policy.
func NewCoolestFirst() *CoolestFirst { return &CoolestFirst{} }

// Name implements Policy.
func (p *CoolestFirst) Name() string { return "coolest-first" }

// Reset implements Policy.
func (p *CoolestFirst) Reset() {}

// Place implements Policy.
func (p *CoolestFirst) Place(j Job, views []ServerView) int {
	best := -1
	var bestTemp units.Celsius
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.MaxCPUTemp < bestTemp {
			best = v.Index
			bestTemp = v.MaxCPUTemp
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Leakage-aware

// LeakageAware is the proactive policy the paper's machinery enables: for
// every server it precomputes (via internal/lut, i.e. server.SteadyTemp
// under the 75 °C cap) the steady-state fan+leakage power at each
// utilization level, and places each job where the predicted marginal
// fan+leakage power of adding that job's demand is lowest. Active and
// memory power are placement-invariant (the job costs k1·U wherever it
// runs), so the marginal fan+leak term is exactly what a placement can
// save.
type LeakageAware struct {
	tables []*lut.Table // per rack slot
}

// NewLeakageAware precomputes the per-server cost curves with
// lut.BuildPerConfig (identical-physics configs share one build).
func NewLeakageAware(cfgs []server.Config, build lut.BuildConfig) (*LeakageAware, error) {
	tables, err := lut.BuildPerConfig(cfgs, build)
	if err != nil {
		return nil, fmt.Errorf("sched: leakage-aware tables: %w", err)
	}
	return NewLeakageAwareFromTables(tables)
}

// NewLeakageAwareFromTables builds the policy over already-built per-slot
// cost tables (slot i of the rack uses tables[i]). Callers that have
// LUTs for the rack's fan controllers anyway — the rack experiment — can
// hand the same tables in instead of paying for a second grid of
// steady-state solves.
func NewLeakageAwareFromTables(tables []*lut.Table) (*LeakageAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sched: leakage-aware needs at least one table")
	}
	for i, t := range tables {
		if t == nil || len(t.Entries) == 0 {
			return nil, fmt.Errorf("sched: leakage-aware table %d is empty", i)
		}
	}
	return &LeakageAware{tables: tables}, nil
}

// Name implements Policy.
func (p *LeakageAware) Name() string { return "leakage-aware" }

// Reset implements Policy.
func (p *LeakageAware) Reset() {}

// marginal returns the predicted steady-state fan+leakage increase of
// placing demand d on server i currently loaded at u.
func (p *LeakageAware) marginal(i int, u, d units.Percent) (units.Watts, error) {
	before, err := p.tables[i].EntryFor(u)
	if err != nil {
		return 0, err
	}
	after, err := p.tables[i].EntryFor(u + d)
	if err != nil {
		return 0, err
	}
	return after.FanLeakPower - before.FanLeakPower, nil
}

// Place implements Policy.
func (p *LeakageAware) Place(j Job, views []ServerView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		cost, err := p.marginal(v.Index, v.Load, j.Demand)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Trace runner

// Result summarizes the scheduling outcome of one trace run; the physics
// outcome lives in the rack's Telemetry.
type Result struct {
	Submitted   int
	Completed   int     // jobs that finished within the horizon
	Placed      int     // jobs that started (Completed plus still-running)
	MeanWaitSec float64 // mean queueing delay of placed jobs
	MaxQueueLen int     // worst backlog observed
}

// active is a placed job with its completion time.
type active struct {
	end    float64
	slot   int
	demand units.Percent
}

// RunTrace drives the rack through the job trace under the policy with a
// fixed step dt, from rack-time start for horizon seconds. Jobs are placed
// FIFO — the queue head blocks until it fits, preserving arrival fairness
// and keeping placement order deterministic. Loads are applied before each
// step, so a job's demand is charged from the step after its placement.
// The step count is computed up front and elapsed time as k·dt, so a
// non-integer dt cannot drift the window length or event timing the way an
// accumulated `elapsed += dt` would (cf. the thermal RK4 substep fix).
func RunTrace(r *rack.Rack, jobs []Job, p Policy, dt, horizon float64) (Result, error) {
	if dt <= 0 || horizon <= 0 {
		return Result{}, fmt.Errorf("sched: dt and horizon must be positive")
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival }) {
		return Result{}, fmt.Errorf("sched: jobs must be sorted by arrival time")
	}
	p.Reset()

	res := Result{Submitted: len(jobs)}
	loads := make([]units.Percent, r.NumServers())
	views := make([]ServerView, r.NumServers())
	var pending []Job
	var running []active
	var totalWait float64
	nextJob := 0
	start := r.Now()

	steps := int(math.Ceil(horizon/dt - 1e-9))
	for k := 0; k < steps; k++ {
		elapsed := float64(k) * dt
		now := start + elapsed

		// Completions first: capacity freed this instant is placeable now.
		keep := running[:0]
		for _, a := range running {
			if a.end <= now {
				loads[a.slot] -= a.demand
				res.Completed++
				continue
			}
			keep = append(keep, a)
		}
		running = keep

		// Arrivals join the FIFO backlog. A job is admitted at the tick of
		// the step interval [elapsed, elapsed+dt) containing its arrival —
		// the standard event-to-fixed-step collapse (anticipation < dt) —
		// so every job with Arrival < horizon is admitted; an
		// `Arrival <= elapsed` rule would silently drop arrivals in the
		// final step of the window.
		for nextJob < len(jobs) && jobs[nextJob].Arrival < elapsed+dt {
			pending = append(pending, jobs[nextJob])
			nextJob++
		}
		if len(pending) > res.MaxQueueLen {
			res.MaxQueueLen = len(pending)
		}

		// Place from the head while the policy accepts.
		for len(pending) > 0 {
			for i := range views {
				views[i] = ServerView{
					Index:      i,
					Name:       r.Name(i),
					Load:       loads[i],
					Free:       100 - loads[i],
					MaxCPUTemp: r.Server(i).MaxCPUTemp(),
					InletTemp:  r.Server(i).InletTemp(),
				}
			}
			j := pending[0]
			slot := p.Place(j, views)
			if slot < 0 {
				break
			}
			if slot >= len(loads) || loads[slot]+j.Demand > 100 {
				return res, fmt.Errorf("sched: policy %s placed job %d on invalid/overloaded server %d", p.Name(), j.ID, slot)
			}
			loads[slot] += j.Demand
			running = append(running, active{end: now + j.Duration, slot: slot, demand: j.Demand})
			// Clamp at zero: admission rounds an arrival down to its step's
			// tick (anticipation < dt), which is not a queueing delay.
			if wait := elapsed - j.Arrival; wait > 0 {
				totalWait += wait
			}
			res.Placed++
			pending = pending[1:]
		}

		for i, u := range loads {
			r.SetLoad(i, u)
		}
		r.Step(dt)
	}
	if res.Placed > 0 {
		res.MeanWaitSec = totalWait / float64(res.Placed)
	}
	return res, nil
}
