package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// Job is one schedulable unit of work.
type Job struct {
	ID       int
	Arrival  float64       // seconds from trace start
	Duration float64       // service time, seconds
	Demand   units.Percent // CPU demand on the server that runs it
}

// JobsFromSpecs converts a loadgen trace into scheduler jobs, assigning
// sequential IDs in arrival order.
func JobsFromSpecs(specs []loadgen.JobSpec) []Job {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = Job{ID: i, Arrival: s.Arrival, Duration: s.Duration, Demand: s.Demand}
	}
	return jobs
}

// ServerView is the dispatcher's telemetry snapshot of one server at a
// placement instant.
type ServerView struct {
	Index      int // slot in the rack
	Name       string
	Load       units.Percent // demand already scheduled on it
	Free       units.Percent // remaining capacity (100 − Load)
	MaxCPUTemp units.Celsius // hottest true die temperature
	InletTemp  units.Celsius // current CPU inlet air temperature
	DCPower    units.Watts   // instantaneous total DC draw
	WallPower  units.Watts   // DC draw lifted through the slot's PSU
	// Health is the slot's degradation state (rack.Health). Only Healthy
	// slots may take placements; the zero value is Healthy, so views built
	// without fault awareness stay placeable.
	Health rack.Health
}

// Policy decides where a job runs. Place returns the chosen rack slot, or
// -1 to leave the job queued (e.g. no server has the capacity). Views are
// presented in rack order; implementations must be deterministic, breaking
// ties by the lowest index.
type Policy interface {
	Name() string
	// Reset clears internal state so a policy can be reused across runs.
	Reset()
	Place(j Job, views []ServerView) int
}

// fits reports whether server v can take the job at all: it must be
// healthy — tripped and failed slots are out of rotation until their
// fault clears — with enough free capacity for the demand. Every shipped
// policy filters candidates through this predicate, which is what keeps
// all six fault-aware at once.
func fits(v ServerView, j Job) bool { return v.Health == rack.Healthy && v.Free >= j.Demand }

// LoadOnlyRefuser is the opt-in Policy attribute behind the event kernel's
// backlog un-pin: a policy returning true promises that its *refusal*
// (Place returning -1) depends only on the views' Load/Free/Health fields
// — never on temperatures, powers or internal clocks — and that a refused
// Place call mutates no internal state. Loads and health change only at
// scheduling events (completions, kills, fault edges, arrivals), which are
// all macro-window wake bounds, so a load-only refusal observed at one
// decision step provably holds at every skipped step until the next event:
// the kernel may macro-step completion-to-completion over a non-empty
// backlog instead of retrying the blocked head every dt. Refusal is
// monotone in load for every shipped policy (refusal == no view passes
// fits), so placements can only make a refused head more refused, never
// less. Policies whose *choice* reads evolving telemetry (coolest-first,
// leakage/cap/pue-aware) must stay conservative: their refusal is still
// load-only, but opting in is deliberately limited to policies whose whole
// decision is — the blind round-robin and least-utilized baselines — so
// the attribute never has to reason about tie-breaks drifting between
// kernels.
type LoadOnlyRefuser interface {
	RefusalIsLoadOnly() bool
}

// RefusalIsLoadOnly reports whether p opted into the load-only refusal
// contract (see LoadOnlyRefuser); policies that do not implement the
// interface stay conservative.
func RefusalIsLoadOnly(p Policy) bool {
	lr, ok := p.(LoadOnlyRefuser)
	return ok && lr.RefusalIsLoadOnly()
}

// ---------------------------------------------------------------------------
// Round-robin

// RoundRobin rotates placements across servers regardless of their state —
// the thermally blind baseline every datacenter dispatcher starts from.
type RoundRobin struct{ next int }

// NewRoundRobin returns the rotating baseline policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Reset implements Policy.
func (p *RoundRobin) Reset() { p.next = 0 }

// RefusalIsLoadOnly implements LoadOnlyRefuser: the rotation reads only
// fits (load + health), and a refused Place leaves the cursor untouched.
func (p *RoundRobin) RefusalIsLoadOnly() bool { return true }

// Place implements Policy: the first server at or after the cursor with
// enough capacity.
func (p *RoundRobin) Place(j Job, views []ServerView) int {
	n := len(views)
	for k := 0; k < n; k++ {
		v := views[(p.next+k)%n]
		if fits(v, j) {
			p.next = (v.Index + 1) % n
			return v.Index
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Least-utilized

// LeastUtilized places each job on the server with the most free capacity,
// the classic load-balancing heuristic (still thermally blind).
type LeastUtilized struct{}

// NewLeastUtilized returns the load-balancing policy.
func NewLeastUtilized() *LeastUtilized { return &LeastUtilized{} }

// Name implements Policy.
func (p *LeastUtilized) Name() string { return "least-utilized" }

// Reset implements Policy.
func (p *LeastUtilized) Reset() {}

// RefusalIsLoadOnly implements LoadOnlyRefuser: both the refusal and the
// choice read only Load/Free/Health, and the policy is stateless.
func (p *LeastUtilized) RefusalIsLoadOnly() bool { return true }

// Place implements Policy.
func (p *LeastUtilized) Place(j Job, views []ServerView) int {
	best := -1
	var bestLoad units.Percent
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.Load < bestLoad {
			best = v.Index
			bestLoad = v.Load
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Coolest-server-first

// CoolestFirst places each job on the feasible server with the lowest die
// temperature — the reactive thermal heuristic. On a heterogeneous rack
// this naturally prefers cold-aisle machines until load warms them past
// their hot-aisle peers.
type CoolestFirst struct{}

// NewCoolestFirst returns the reactive thermal policy.
func NewCoolestFirst() *CoolestFirst { return &CoolestFirst{} }

// Name implements Policy.
func (p *CoolestFirst) Name() string { return "coolest-first" }

// Reset implements Policy.
func (p *CoolestFirst) Reset() {}

// Place implements Policy.
func (p *CoolestFirst) Place(j Job, views []ServerView) int {
	best := -1
	var bestTemp units.Celsius
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.MaxCPUTemp < bestTemp {
			best = v.Index
			bestTemp = v.MaxCPUTemp
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Leakage-aware

// LeakageAware is the proactive policy the paper's machinery enables: for
// every server it precomputes (via internal/lut, i.e. server.SteadyTemp
// under the 75 °C cap) the steady-state fan+leakage power at each
// utilization level, and places each job where the predicted marginal
// fan+leakage power of adding that job's demand is lowest. Active and
// memory power are placement-invariant (the job costs k1·U wherever it
// runs), so the marginal fan+leak term is exactly what a placement can
// save.
type LeakageAware struct {
	tables []*lut.Table // per rack slot
}

// NewLeakageAware precomputes the per-server cost curves with
// lut.BuildPerConfig (identical-physics configs share one build).
func NewLeakageAware(cfgs []server.Config, build lut.BuildConfig) (*LeakageAware, error) {
	tables, err := lut.BuildPerConfig(cfgs, build)
	if err != nil {
		return nil, fmt.Errorf("sched: leakage-aware tables: %w", err)
	}
	return NewLeakageAwareFromTables(tables)
}

// NewLeakageAwareFromTables builds the policy over already-built per-slot
// cost tables (slot i of the rack uses tables[i]). Callers that have
// LUTs for the rack's fan controllers anyway — the rack experiment — can
// hand the same tables in instead of paying for a second grid of
// steady-state solves.
func NewLeakageAwareFromTables(tables []*lut.Table) (*LeakageAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sched: leakage-aware needs at least one table")
	}
	for i, t := range tables {
		if t == nil || len(t.Entries) == 0 {
			return nil, fmt.Errorf("sched: leakage-aware table %d is empty", i)
		}
	}
	return &LeakageAware{tables: tables}, nil
}

// Name implements Policy.
func (p *LeakageAware) Name() string { return "leakage-aware" }

// Reset implements Policy.
func (p *LeakageAware) Reset() {}

// SteadyFanLeakMarginal returns the predicted steady-state fan+leakage
// increase of raising utilization u by d, read from a per-slot cost table
// (lut.Build over server.SteadyTemp). It is the slow, thermally settled
// half of a placement's power cost — the half MarginalDCPower deliberately
// excludes — shared by the table-driven policies and the conservative
// cap-admission estimate.
func SteadyFanLeakMarginal(t *lut.Table, u, d units.Percent) (units.Watts, error) {
	before, err := t.EntryFor(u)
	if err != nil {
		return 0, err
	}
	after, err := t.EntryFor(u + d)
	if err != nil {
		return 0, err
	}
	return after.FanLeakPower - before.FanLeakPower, nil
}

// marginal returns the predicted steady-state fan+leakage increase of
// placing demand d on server i currently loaded at u.
func (p *LeakageAware) marginal(i int, u, d units.Percent) (units.Watts, error) {
	return SteadyFanLeakMarginal(p.tables[i], u, d)
}

// Place implements Policy.
func (p *LeakageAware) Place(j Job, views []ServerView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		cost, err := p.marginal(v.Index, v.Load, j.Demand)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Cap-aware (wall-power aware)

// CapAware is the delivery-chain-aware refinement of LeakageAware: it
// predicts each placement's marginal *wall* power instead of its marginal
// DC power. The steady-state fan+leakage marginal comes from the same
// per-slot LUTs; the placement-invariant active+memory marginal is added
// back (DC-invariant terms stop being placement-invariant at the wall,
// because each PSU's efficiency depends on how loaded that server already
// is); and the total DC increment is lifted through the slot's PSU curve
// at the server's current draw. Ranking by marginal PSU input is ranking
// by marginal wall power: the shared PDU is monotone in its summed input
// and identical across candidates, so it drops out of the comparison.
type CapAware struct {
	tables []*lut.Table
	models []power.ServerModel
	psus   []*power.PSUModel // nil slice or nil entries = ideal supplies
}

// NewCapAware precomputes per-slot cost curves with lut.BuildPerConfig and
// builds the wall-power-aware policy. psus may be nil (every supply ideal)
// or hold one entry per slot, nil entries meaning an ideal supply.
func NewCapAware(cfgs []server.Config, psus []*power.PSUModel, build lut.BuildConfig) (*CapAware, error) {
	tables, err := lut.BuildPerConfig(cfgs, build)
	if err != nil {
		return nil, fmt.Errorf("sched: cap-aware tables: %w", err)
	}
	models := make([]power.ServerModel, len(cfgs))
	for i, cfg := range cfgs {
		models[i] = cfg.Power
	}
	return NewCapAwareFromTables(tables, models, psus)
}

// NewCapAwareFromTables builds the policy over already-built per-slot cost
// tables and power models (slot i uses tables[i]/models[i]/psus[i]).
func NewCapAwareFromTables(tables []*lut.Table, models []power.ServerModel, psus []*power.PSUModel) (*CapAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sched: cap-aware needs at least one table")
	}
	if len(models) != len(tables) {
		return nil, fmt.Errorf("sched: cap-aware has %d tables but %d power models", len(tables), len(models))
	}
	if psus != nil && len(psus) != len(tables) {
		return nil, fmt.Errorf("sched: cap-aware has %d tables but %d PSUs", len(tables), len(psus))
	}
	for i, t := range tables {
		if t == nil || len(t.Entries) == 0 {
			return nil, fmt.Errorf("sched: cap-aware table %d is empty", i)
		}
	}
	return &CapAware{tables: tables, models: models, psus: psus}, nil
}

// Name implements Policy.
func (p *CapAware) Name() string { return "cap-aware" }

// Reset implements Policy.
func (p *CapAware) Reset() {}

// marginalWall returns the predicted marginal wall power of placing demand
// d on the server behind view v: the steady fan+leak increment from the
// LUT plus the active+memory increment, lifted through the slot's PSU at
// the server's current DC draw.
func (p *CapAware) marginalWall(v ServerView, d units.Percent) (units.Watts, error) {
	steady, err := SteadyFanLeakMarginal(p.tables[v.Index], v.Load, d)
	if err != nil {
		return 0, err
	}
	mdc := steady + MarginalDCPower(p.models[v.Index], v.Load, d)
	psu := p.psuFor(v.Index)
	if psu == nil {
		return mdc, nil
	}
	return psu.Wall(v.DCPower+mdc) - psu.Wall(v.DCPower), nil
}

func (p *CapAware) psuFor(i int) *power.PSUModel {
	if p.psus == nil || i >= len(p.psus) {
		return nil
	}
	return p.psus[i]
}

// Place implements Policy: the feasible server with the lowest predicted
// marginal wall power, ties to the lowest index.
func (p *CapAware) Place(j Job, views []ServerView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) || v.Index >= len(p.tables) {
			continue
		}
		cost, err := p.marginalWall(v, j.Demand)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// PUE-aware (facility aware)

// PUEAware is the facility-scope refinement of CapAware: it predicts each
// placement's marginal *facility* power — the marginal wall power plus the
// marginal CRAC/chiller power spent removing it as heat. Two things change
// relative to cap-aware. First, the cost tables are built at the ambients
// the CRAC actually supplies (the configured ambients shifted by the
// setpoint delta), so the steady fan+leak marginals stay calibrated when
// the operator moves the cold aisle — a facility-blind policy's tables go
// stale the moment the setpoint moves. Second, the wall marginal is
// amplified by the facility's own response: the cooling power added by one
// more wall Watt at the rack's current operating point. The amplification
// is monotone and common to every candidate, so within one placement it
// preserves the wall ranking — the recalibrated tables are what move
// decisions; the amplification is what makes the predicted cost the number
// the facility actually pays.
type PUEAware struct {
	inner *CapAware
	fac   cooling.Facility
}

// NewPUEAware builds the facility-aware policy: per-slot cost tables are
// built at setpoint-corrected ambients (each config's Ambient shifted by
// fac.AmbientDelta), then composed with the slots' PSU curves and the
// facility's cooling response. psus may be nil (ideal supplies) or one
// entry per slot.
func NewPUEAware(cfgs []server.Config, psus []*power.PSUModel, fac cooling.Facility, build lut.BuildConfig) (*PUEAware, error) {
	if err := fac.Validate(); err != nil {
		return nil, fmt.Errorf("sched: pue-aware facility: %w", err)
	}
	shifted := make([]server.Config, len(cfgs))
	delta := fac.AmbientDelta()
	for i, cfg := range cfgs {
		shifted[i] = cfg.ShiftAmbient(delta)
	}
	inner, err := NewCapAware(shifted, psus, build)
	if err != nil {
		return nil, fmt.Errorf("sched: pue-aware tables: %w", err)
	}
	return &PUEAware{inner: inner, fac: fac}, nil
}

// NewPUEAwareFromTables builds the policy over already-built per-slot cost
// tables — which the caller must have built at the facility's operating
// ambients — power models and PSUs (slot i uses tables[i]/models[i]/psus[i]).
func NewPUEAwareFromTables(tables []*lut.Table, models []power.ServerModel, psus []*power.PSUModel, fac cooling.Facility) (*PUEAware, error) {
	if err := fac.Validate(); err != nil {
		return nil, fmt.Errorf("sched: pue-aware facility: %w", err)
	}
	inner, err := NewCapAwareFromTables(tables, models, psus)
	if err != nil {
		return nil, fmt.Errorf("sched: pue-aware: %w", err)
	}
	return &PUEAware{inner: inner, fac: fac}, nil
}

// Name implements Policy.
func (p *PUEAware) Name() string { return "pue-aware" }

// Reset implements Policy.
func (p *PUEAware) Reset() { p.inner.Reset() }

// marginalFacility returns the predicted marginal facility power of
// placing demand d on the server behind view v, given the rack's current
// total wall draw: the marginal wall power plus the extra cooling power
// the facility spends removing it.
func (p *PUEAware) marginalFacility(v ServerView, d units.Percent, rackWallW float64) (units.Watts, error) {
	mw, err := p.inner.marginalWall(v, d)
	if err != nil {
		return 0, err
	}
	cool := p.fac.CoolingPower(rackWallW+float64(mw)) - p.fac.CoolingPower(rackWallW)
	return mw + units.Watts(cool), nil
}

// Place implements Policy: the feasible server with the lowest predicted
// marginal facility power, ties to the lowest index. The rack's wall draw
// is approximated as the sum of the per-slot PSU inputs the views carry
// (the shared PDU sits between them and the true wall, and is monotone).
func (p *PUEAware) Place(j Job, views []ServerView) int {
	var rackWallW float64
	for _, v := range views {
		rackWallW += float64(v.WallPower)
	}
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) || v.Index >= len(p.inner.tables) {
			continue
		}
		cost, err := p.marginalFacility(v, j.Demand, rackWallW)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// MarginalDCPower returns the DC power increment of raising utilization u
// by d on a server with power model m, counting the utilization-driven
// components (active CPU and memory/IO). Fan and leakage responses are
// slower and policy-dependent; the cap-aware policy adds them from its
// steady-state tables, while the capped trace runner deliberately uses
// only this fast, model-exact part as its admission estimate.
func MarginalDCPower(m power.ServerModel, u, d units.Percent) units.Watts {
	return m.Active.Power(u+d) - m.Active.Power(u) + m.Memory.Power(u+d) - m.Memory.Power(u)
}

// ---------------------------------------------------------------------------
// Trace runner

// Result summarizes the scheduling outcome of one trace run; the physics
// outcome lives in the rack's Telemetry.
type Result struct {
	Submitted   int
	Completed   int     // jobs that finished within the horizon
	Placed      int     // jobs currently or finally placed (kills decrement, re-placements increment)
	MeanWaitSec float64 // mean of the waits charged at every placement, over net Placed
	MaxQueueLen int     // worst backlog observed
	Deferrals   int     // placements deferred by the wall-power cap
	RackSteps   int     // rack advances taken: fixed-dt = horizon/dt; event mode = macro windows

	// Backfills counts placements made by the FIFO backfill pass
	// (TraceConfig.Backfill): jobs placed past a blocked queue head. Each
	// is also counted in Placed; zero whenever backfill is off.
	Backfills int

	// Degradation outcome (zero on a fault-free run).
	Requeued int // job kills that rejoined the backlog head (a job can count twice)
	Lost     int // jobs abandoned under TraceConfig.DropOnFault
	// LostJobSeconds totals the work destroyed by kills: the discarded
	// progress of each requeued job (it restarts from scratch) plus the
	// full duration of each dropped job (its service is never delivered).
	LostJobSeconds float64

	// Metrics echoes TraceConfig.Metrics after the run's counters — the
	// kernel's pin-reason breakdown, the scheduling counts, the rack's
	// propagator and macro attribution — have been folded in. nil when no
	// registry was attached.
	Metrics *obs.Registry
}

// TraceConfig parameterizes a trace run.
type TraceConfig struct {
	Dt      float64 // simulation step, seconds
	Horizon float64 // trace window, seconds

	// WallCapW, when positive, is the rack-level wall-power budget: a
	// placement whose predicted post-placement wall draw strictly exceeds
	// the cap is deferred — the FIFO head blocks and is retried on every
	// subsequent step, so capped runs stay deterministic and starvation
	// free (later jobs never overtake a deferred head). The prediction is
	// rack.WallPowerWithAll over the utilization-driven DC increments
	// (MarginalDCPower) of this job plus every placement already admitted
	// in the same step, whose power the physics has not drawn yet; a
	// placement landing exactly on the cap is admitted. Zero disables
	// capping.
	WallCapW float64

	// CapMarginal, when non-nil, holds one steady-state cost table per
	// rack slot (the same per-slot tables the leakage-aware policies are
	// built from; nil entries fall back to the fast estimate) and makes
	// cap admission conservative: the LUT steady fan+leak marginal is
	// added — clamped at zero, so the estimate can only grow — to
	// MarginalDCPower in the wall-cap check. The fast estimate alone
	// counts only the utilization-driven increment, so fan and leakage
	// transients settling after admission can push the wall draw past the
	// cap; the conservative estimate charges the settled cost up front and
	// therefore defers no later (and possibly earlier) than the fast one.
	CapMarginal []*lut.Table

	// EventStepping selects the event-driven kernel: between consecutive
	// events — job arrivals, job completions, controller wake-ups,
	// optional telemetry samples — the rack advances in one closed-form
	// macro window (rack.Advance) instead of gap/dt fixed steps, so
	// wall-clock scales with the number of scheduling events rather than
	// the horizon. Scheduling decisions are taken at exactly the same grid
	// steps as the fixed-dt path, so placements, deferral counts and queue
	// statistics are identical; energies agree to the macro-stepping drift
	// tolerance (≤1e-6 relative, see server.Config.MacroDriftTolC). While
	// the backlog is non-empty — unless the policy promises load-only
	// refusals (LoadOnlyRefuser) and no wall cap is set, in which case the
	// kernel macro-steps completion-to-completion over the blocked head —
	// or whenever some fan controller cannot promise a quiet horizon
	// (control.HorizonPromiser), the kernel pins itself to fixed-dt
	// stepping. false — the default — is the fixed-dt reference path,
	// bit-identical to prior behaviour.
	EventStepping bool

	// Backfill enables a FIFO backfill pass whenever the queue head blocks
	// (policy refusal or cap deferral): the remaining queued jobs are tried
	// once each, in arrival order, against the same invalid/overload/health
	// checks and the same pendingDC cap admission the head failed, and
	// placed where accepted. The head keeps strict priority — a backfilled
	// placement only consumes capacity, which can never un-refuse the head
	// (refusal is monotone in load for every shipped policy) — but arrival
	// fairness weakens from strict FIFO to head-priority-only: a small job
	// behind a large blocked head may run first, indefinitely often under
	// sustained overload. Cap-blocked backfill candidates are skipped
	// without counting a Deferral (the deferral meter stays head-only).
	// Off (the default) preserves strict FIFO and bit-identical results.
	Backfill bool

	// SampleEvery, in seconds, optionally forces an event-stepping wake at
	// a fixed telemetry cadence, bounding how coarse the peak/maxima
	// sampling can get inside long quiet gaps. 0 (the default) samples
	// only at events and macro sub-step boundaries. Ignored by the
	// fixed-dt path, which observes every step anyway. Align it with
	// rack.Config.ReliabilitySampleEvery so reliability samples land on
	// identical instants in both stepping modes.
	SampleEvery float64

	// Faults, when non-nil and non-empty, is the deterministic fault
	// schedule (internal/fault) injected through the run. Every event's
	// inject and clear times are pinned up front to the first grid step at
	// or after them — the same integer-step arithmetic that keeps arrivals
	// exact under a non-integer dt — and applied serially at those steps,
	// clears before applies at a shared instant, before any placement
	// decision of the step. Jobs running on a server that turns unhealthy
	// are killed the same instant: requeued at the backlog head in
	// kill order (the default), or abandoned under DropOnFault. A job
	// completing exactly at a fault instant completes — completions are
	// processed first. An empty or nil schedule leaves every metric
	// bit-identical to a fault-free run.
	Faults *fault.Schedule

	// DropOnFault switches the kill policy from requeue-at-head to drop:
	// killed jobs are counted Lost and never rejoin the backlog. Use it to
	// model work without a retry path (the default models idempotent batch
	// jobs restarted from scratch).
	DropOnFault bool

	// Ctx, when non-nil, is the run's cooperative cancellation: it is
	// checked at every decision-step boundary (fixed kernel: every grid
	// step; event kernel: every macro-window boundary), never mid-advance.
	// A cancelled run stops at the boundary and returns the partial Result
	// together with a *Cancelled error whose Checkpoint resumes the run
	// (ResumeTraceCfg) byte-identically to the uninterrupted one. nil — the
	// default — never cancels and adds no per-step cost.
	Ctx context.Context

	// CheckpointEvery, in seconds of simulated time, is the periodic
	// checkpoint cadence: at the first decision-step boundary at or past
	// each multiple, the run's full state is captured and handed to
	// CheckpointSink. Setting either checkpoint field requires the other;
	// CheckpointEvery must be positive and finite. Zero with a nil sink —
	// the default — disables periodic checkpointing entirely.
	CheckpointEvery float64

	// CheckpointSink receives each periodic checkpoint. A sink error
	// aborts the run and is returned verbatim — which doubles as a precise
	// interrupt-at-T mechanism for tests. The sink runs serially on the
	// run's goroutine; what it does with the Checkpoint (snap.EncodeFile,
	// usually) is its own business.
	CheckpointSink func(Checkpoint) error

	// Metrics, when non-nil, receives the run's observability counters:
	// per-advance kernel accounting (steps, macro windows, window-length
	// histogram, the pin-reason breakdown) during the run, scheduling
	// counts as they happen, and the rack's propagator/macro/fault roll-up
	// (rack.MetricsInto) after the loop. Handles are fetched once at run
	// start; per-step updates are atomic, commutative and allocation-free,
	// so one registry may be shared by concurrent runs (the experiments
	// fan-out does exactly that) and still dump byte-identically for every
	// worker count — see internal/obs. nil (the default) records nothing
	// and leaves every result and golden table bit-identical.
	Metrics *obs.Registry
}

// active is a placed job with its completion time. The original Job and
// the placement instant ride along so a fault-kill can requeue it and
// account the discarded progress.
type active struct {
	end    float64
	slot   int
	demand units.Percent
	job    Job
	start  float64 // elapsed (trace-relative) placement instant
}

// faultAction is one pinned fault edge: apply or clear ev at grid step k.
type faultAction struct {
	k     int
	apply bool
	ev    fault.Event
}

// RunTrace drives the rack through the job trace under the policy with a
// fixed step dt, from rack-time start for horizon seconds, with no wall
// cap. See RunTraceCfg.
func RunTrace(r *rack.Rack, jobs []Job, p Policy, dt, horizon float64) (Result, error) {
	return RunTraceCfg(r, jobs, p, TraceConfig{Dt: dt, Horizon: horizon})
}

// RunTraceCfg drives the rack through the job trace under the policy. Jobs
// are placed FIFO — the queue head blocks until it fits (and, when
// tc.WallCapW is set, until its placement keeps the predicted wall draw at
// or under the cap), preserving arrival fairness and keeping placement
// order deterministic. Loads are applied before each step, so a job's
// demand is charged from the step after its placement. The step count is
// computed up front and elapsed time as k·dt, so a non-integer dt cannot
// drift the window length or event timing the way an accumulated
// `elapsed += dt` would (cf. the thermal RK4 substep fix).
//
// With tc.EventStepping the same decision process runs event-driven: the
// kernel only visits the grid steps where something can happen and
// advances the rack across the quiet gaps in closed-form macro windows
// (see TraceConfig.EventStepping).
func RunTraceCfg(r *rack.Rack, jobs []Job, p Policy, tc TraceConfig) (Result, error) {
	e, err := newTraceRun(r, jobs, p, tc)
	if err != nil {
		return Result{}, err
	}
	p.Reset()
	e.m.submitted.Add(int64(len(jobs)))
	return e.run()
}

// newTraceRun validates the configuration and builds the run state shared
// by RunTraceCfg and ResumeTraceCfg — everything up to, but excluding, the
// fresh-run-only initialization (policy reset, submitted count) a resume
// must skip.
func newTraceRun(r *rack.Rack, jobs []Job, p Policy, tc TraceConfig) (*traceRun, error) {
	dt, horizon := tc.Dt, tc.Horizon
	if dt <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("sched: dt and horizon must be positive")
	}
	if tc.CheckpointSink != nil || tc.CheckpointEvery != 0 {
		if !(tc.CheckpointEvery > 0) || math.IsInf(tc.CheckpointEvery, 0) {
			return nil, fmt.Errorf("sched: CheckpointEvery must be positive and finite, got %g", tc.CheckpointEvery)
		}
		if tc.CheckpointSink == nil {
			return nil, fmt.Errorf("sched: CheckpointEvery set without a CheckpointSink")
		}
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival }) {
		return nil, fmt.Errorf("sched: jobs must be sorted by arrival time")
	}

	e := &traceRun{
		r:         r,
		jobs:      jobs,
		p:         p,
		tc:        tc,
		dt:        dt,
		res:       Result{Submitted: len(jobs)},
		loads:     make([]units.Percent, r.NumServers()),
		views:     make([]ServerView, r.NumServers()),
		pendingDC: make([]units.Watts, r.NumServers()),
		start:     r.Now(),
		steps:     int(math.Ceil(horizon/dt - 1e-9)),
		nextCkpt:  tc.CheckpointEvery,
		hooks:     tc.Ctx != nil || tc.CheckpointSink != nil,
		m:         newRunMetrics(tc.Metrics),
		// The backlog un-pin engages only when the head's block is provably
		// invariant between events: a load-only policy refusal. A wall cap
		// makes deferrals depend on the evolving wall draw (fan and leakage
		// transients), so capped runs keep the conservative per-step retry.
		backlogMacro: tc.WallCapW <= 0 && RefusalIsLoadOnly(p),
	}
	if !tc.Faults.Empty() {
		if err := tc.Faults.Validate(r.NumServers(), r.Server(0).Fans().NumFans()); err != nil {
			return nil, fmt.Errorf("sched: fault schedule: %w", err)
		}
		e.buildFaultActions()
	}
	return e, nil
}

// run executes the configured kernel and folds the post-run accounting —
// shared by the fresh-start and resume entry points. On a cancellation or
// divergence error the partial Result is still returned alongside it.
func (e *traceRun) run() (Result, error) {
	var err error
	if e.tc.EventStepping {
		err = e.runEvents()
	} else {
		err = e.runFixed()
	}
	if e.res.Placed > 0 {
		e.res.MeanWaitSec = e.totalWait / float64(e.res.Placed)
	}
	if e.tc.Metrics != nil {
		// Serial post-run fold of the physics-layer counters; the per-step
		// kernel and scheduling counts were charged as they happened.
		e.r.MetricsInto(e.tc.Metrics)
		e.res.Metrics = e.tc.Metrics
	}
	return e.res, err
}

// traceRun is the state of one trace execution, shared by the fixed-dt
// reference loop and the event-driven kernel so both take scheduling
// decisions through literally the same code.
type traceRun struct {
	r     *rack.Rack
	jobs  []Job
	p     Policy
	tc    TraceConfig
	dt    float64
	res   Result
	loads []units.Percent
	views []ServerView
	// pendingDC tracks, per slot, the DC increments of placements admitted
	// earlier in the current step: the rack's measured draw lags behind by
	// one step (loads apply at the next Step), so cap admission must count
	// same-step placements or several jobs could jointly breach the cap.
	pendingDC []units.Watts
	pending   []Job
	running   []active
	totalWait float64
	nextJob   int
	start     float64
	steps     int

	// Run control: k0 is the first grid step to process (non-zero only on
	// resume), nextCkpt the next periodic-checkpoint instant in elapsed
	// seconds, hooks whether boundary() needs to run at all — one branch
	// per decision step when disabled.
	k0       int
	nextCkpt float64
	hooks    bool

	// backlogMacro, fixed at run start, allows the event kernel to grant
	// macro windows over a non-empty backlog (see LoadOnlyRefuser): the
	// policy's refusals are load-only and no wall cap is set.
	backlogMacro bool

	// Pinned fault edges in application order (k ascending, clears before
	// applies at a shared step), the cursor into them, and the sorted wake
	// steps the event kernel must not macro-step past.
	actions    []faultAction
	nextAction int
	faultSteps []int

	// Metric handles for tc.Metrics, all nil (free no-ops) by default.
	m runMetrics
}

// runFixed is the fixed-dt reference path: every grid step processes
// events and advances the rack by one dt, bit-identical to the original
// runner.
func (e *traceRun) runFixed() error {
	for k := e.k0; k < e.steps; k++ {
		if e.hooks {
			if err := e.boundary(k); err != nil {
				return err
			}
		}
		if err := e.processStep(k); err != nil {
			return err
		}
		e.applyLoads()
		e.r.Step(e.dt)
		e.res.RackSteps++
		e.m.advance(1, pinFixedDt)
		if err := e.checkFinite(k + 1); err != nil {
			return err
		}
	}
	return nil
}

// processStep takes every scheduling decision of grid step k: completions
// free capacity, arrivals join the backlog, and the FIFO head places while
// the policy (and the wall cap) accepts.
func (e *traceRun) processStep(k int) error {
	elapsed := float64(k) * e.dt
	now := e.start + elapsed
	for i := range e.pendingDC {
		e.pendingDC[i] = 0
	}

	// Completions first: capacity freed this instant is placeable now.
	keep := e.running[:0]
	for _, a := range e.running {
		if a.end <= now {
			e.loads[a.slot] -= a.demand
			e.res.Completed++
			e.m.completed.Inc()
			continue
		}
		keep = append(keep, a)
	}
	e.running = keep

	// Fault edges pinned to this step fire now, serially in application
	// order — after completions (a job ending exactly at a fault instant
	// completes), before the kill scan and any placement of the step.
	for e.nextAction < len(e.actions) && e.actions[e.nextAction].k <= k {
		a := e.actions[e.nextAction]
		var err error
		if a.apply {
			err = e.r.ApplyFault(a.ev)
		} else {
			err = e.r.ClearFault(a.ev)
		}
		if err != nil {
			return fmt.Errorf("sched: fault at step %d: %w", k, err)
		}
		e.nextAction++
	}

	// Kill scan: work running on a slot that is no longer healthy — a
	// fault edge above, or a natural thermal trip latched by the physics
	// since the last decision — is destroyed this instant. Requeued jobs
	// rejoin the backlog HEAD in kill order (arrival fairness: they were
	// placed before anything still queued), with their wait clock
	// restarted at the kill instant; under DropOnFault they are abandoned.
	var killed []Job
	keep = e.running[:0]
	for _, a := range e.running {
		if e.r.Health(a.slot) == rack.Healthy {
			keep = append(keep, a)
			continue
		}
		e.loads[a.slot] -= a.demand
		e.res.Placed--
		if e.tc.DropOnFault {
			e.res.Lost++
			e.m.dropped.Inc()
			e.res.LostJobSeconds += a.job.Duration
		} else {
			e.res.Requeued++
			e.m.requeued.Inc()
			e.res.LostJobSeconds += elapsed - a.start
			j := a.job
			j.Arrival = elapsed
			killed = append(killed, j)
		}
	}
	e.running = keep
	if len(killed) > 0 {
		e.pending = append(killed, e.pending...)
	}

	// Arrivals join the FIFO backlog. A job is admitted at the tick of
	// the step interval [elapsed, elapsed+dt) containing its arrival —
	// the standard event-to-fixed-step collapse (anticipation < dt) —
	// so every job with Arrival < horizon is admitted; an
	// `Arrival <= elapsed` rule would silently drop arrivals in the
	// final step of the window.
	for e.nextJob < len(e.jobs) && e.jobs[e.nextJob].Arrival < elapsed+e.dt {
		e.pending = append(e.pending, e.jobs[e.nextJob])
		e.nextJob++
	}
	if len(e.pending) > e.res.MaxQueueLen {
		e.res.MaxQueueLen = len(e.pending)
	}
	e.m.backlogHW.SetMax(float64(len(e.pending)))

	// Place from the head while the policy accepts.
	for len(e.pending) > 0 {
		e.buildViews()
		j := e.pending[0]
		slot := e.p.Place(j, e.views)
		if slot < 0 {
			break
		}
		if err := e.checkPlacement(j, slot); err != nil {
			return err
		}
		if !e.admitCap(j, slot) {
			// Deferral: the head blocks under the budget and is retried
			// next step, after completions free power.
			e.res.Deferrals++
			e.m.deferrals.Inc()
			break
		}
		e.place(j, slot, now, elapsed)
		e.pending = e.pending[1:]
	}
	// The head blocked (or the queue drained). One FIFO backfill pass lets
	// later jobs place past a blocked head when enabled.
	if e.tc.Backfill && len(e.pending) > 1 {
		if err := e.backfill(now, elapsed); err != nil {
			return err
		}
	}
	return nil
}

// buildViews refreshes the policy's per-slot telemetry snapshot from the
// current dispatcher loads and rack state — once per placement attempt, so
// every decision sees the loads of same-step placements already committed.
func (e *traceRun) buildViews() {
	for i := range e.views {
		e.views[i] = ServerView{
			Index:      i,
			Name:       e.r.Name(i),
			Load:       e.loads[i],
			Free:       100 - e.loads[i],
			MaxCPUTemp: e.r.Server(i).MaxCPUTemp(),
			InletTemp:  e.r.Server(i).InletTemp(),
			DCPower:    e.r.ServerDCPower(i),
			WallPower:  e.r.ServerWallPower(i),
			Health:     e.r.Health(i),
		}
	}
}

// checkPlacement validates a policy's slot choice — out-of-range or
// overloaded slots and unhealthy servers are hard policy bugs, for the
// head and backfill paths alike.
func (e *traceRun) checkPlacement(j Job, slot int) error {
	if slot >= len(e.loads) || e.loads[slot]+j.Demand > 100 {
		return fmt.Errorf("sched: policy %s placed job %d on invalid/overloaded server %d", e.p.Name(), j.ID, slot)
	}
	if h := e.r.Health(slot); h != rack.Healthy {
		return fmt.Errorf("sched: policy %s placed job %d on %v server %d", e.p.Name(), j.ID, h, slot)
	}
	return nil
}

// admitCap runs the wall-cap admission for placing j on slot, charging the
// job's DC increment into pendingDC when admitted so later same-step
// placements see it. A false return leaves pendingDC unchanged; with no
// cap configured every placement is admitted.
func (e *traceRun) admitCap(j Job, slot int) bool {
	if e.tc.WallCapW <= 0 {
		return true
	}
	mdc := MarginalDCPower(e.r.Server(slot).Config().Power, e.loads[slot], j.Demand)
	if slot < len(e.tc.CapMarginal) && e.tc.CapMarginal[slot] != nil {
		// Conservative admission: charge the settled fan+leak cost up
		// front. Clamped at zero so the conservative estimate is never
		// below the fast one.
		if steady, err := SteadyFanLeakMarginal(e.tc.CapMarginal[slot], e.loads[slot], j.Demand); err == nil && steady > 0 {
			mdc += steady
		}
	}
	e.pendingDC[slot] += mdc
	if float64(e.r.WallPowerWithAll(e.pendingDC)) > e.tc.WallCapW {
		e.pendingDC[slot] -= mdc
		return false
	}
	return true
}

// place commits job j to slot at decision instant (now absolute, elapsed
// trace-relative): loads, the running set, the wait meter and the
// placement counters.
func (e *traceRun) place(j Job, slot int, now, elapsed float64) {
	e.loads[slot] += j.Demand
	e.running = append(e.running, active{end: now + j.Duration, slot: slot, demand: j.Demand, job: j, start: elapsed})
	// Clamp at zero: admission rounds an arrival down to its step's
	// tick (anticipation < dt), which is not a queueing delay.
	if wait := elapsed - j.Arrival; wait > 0 {
		e.totalWait += wait
	}
	e.res.Placed++
	e.m.placements.Inc()
}

// backfill is the TraceConfig.Backfill pass: every job queued behind the
// blocked head is tried once, in arrival order, against the same
// validation and pendingDC cap admission the head failed; accepted jobs
// leave the queue and start immediately. Refused or cap-blocked candidates
// are skipped — without touching the head-only Deferrals meter — and the
// head keeps strict priority because backfilled placements only consume
// capacity (see the field's FIFO-fairness caveat).
func (e *traceRun) backfill(now, elapsed float64) error {
	for idx := 1; idx < len(e.pending); {
		e.buildViews()
		j := e.pending[idx]
		slot := e.p.Place(j, e.views)
		if slot < 0 {
			idx++
			continue
		}
		if err := e.checkPlacement(j, slot); err != nil {
			return err
		}
		if !e.admitCap(j, slot) {
			idx++
			continue
		}
		e.place(j, slot, now, elapsed)
		e.res.Backfills++
		e.m.backfills.Inc()
		e.pending = append(e.pending[:idx], e.pending[idx+1:]...)
	}
	return nil
}

func (e *traceRun) applyLoads() {
	for i, u := range e.loads {
		e.r.SetLoad(i, u)
	}
}

// runEvents is the event-driven kernel. It visits exactly the grid steps
// at which the fixed-dt path could do something — a job arrival or
// completion, a blocked backlog retry, a controller wake-up, a telemetry
// sample — and collapses every gap in between into one rack.Advance macro
// window. Decision code, decision instants and decision inputs are shared
// with runFixed, so placements, deferrals and queue statistics are
// identical; only the physics between decisions is advanced in closed
// form.
func (e *traceRun) runEvents() error {
	sampleSteps := 0
	if e.tc.SampleEvery > 0 {
		sampleSteps = int(math.Round(e.tc.SampleEvery / e.dt))
		if sampleSteps < 1 {
			sampleSteps = 1
		}
	}
	for k := e.k0; k < e.steps; {
		if e.hooks {
			if err := e.boundary(k); err != nil {
				return err
			}
		}
		if err := e.processStep(k); err != nil {
			return err
		}
		e.applyLoads()
		// Controllers tick at the kernel's grid time. The fixed-dt path
		// ticks them at the rack's accumulated clock instead; the two agree
		// exactly whenever k·dt is exactly representable (every integer dt,
		// i.e. all shipped experiments) and to one ulp otherwise — a
		// hold-off or poll boundary landing inside that ulp could shift a
		// fan decision by one grid step between the modes.
		now := e.start + float64(k)*e.dt
		e.r.TickControllers(now)
		window, reason := 1, pinBacklog
		// A non-empty backlog pins the kernel to fixed-dt — the head is
		// retried, against freshly evolved telemetry views, every step,
		// exactly like the reference path — unless the head's refusal is
		// provably load-only (LoadOnlyRefuser, no wall cap): loads and
		// health change only at wake events, so the refusal holds at every
		// skipped step and the kernel macro-steps completion-to-completion.
		if len(e.pending) == 0 || e.backlogMacro {
			window, reason = e.window(k, now, sampleSteps)
		}
		e.r.Advance(e.dt, window)
		e.res.RackSteps++
		e.m.advance(window, reason)
		k += window
		if err := e.checkFinite(k); err != nil {
			return err
		}
	}
	return nil
}

// window returns the macro-window length from step k — up to, exclusive,
// the next grid step at which anything can happen — plus the pin reason
// charged when that length is a single step. The reason is the bound that
// strictly lowered `next` last; on ties the earlier check wins, so the
// attribution precedence is horizon-end, arrival, fault-edge, completion,
// controller horizon, sample grid — deterministic for every worker count
// because every bound is computed from serial state.
func (e *traceRun) window(k int, now float64, sampleSteps int) (int, pinReason) {
	if (len(e.actions) > 0 || len(e.pending) > 0) && e.r.TripRisk() {
		// Fault runs pin to single steps while any live server sits inside
		// the trip-guard band: a natural trip latching mid-window would
		// defer its job kills to the window's end, diverging from the
		// fixed-dt reference that observes the trip on its exact step. A
		// backlog-crossing window (LoadOnlyRefuser) takes the same pin even
		// on fault-free runs — a natural trip un-healths a slot, which is
		// exactly the state a load-only refusal is conditioned on — while
		// the empty-backlog path keeps PR 5's fault-runs-only condition
		// bit-identically.
		return 1, pinTripGuard
	}
	next, cause := e.steps, pinHorizonEnd
	if e.nextJob < len(e.jobs) {
		if ka := e.arrivalStep(e.jobs[e.nextJob].Arrival); ka < next {
			next, cause = ka, pinArrival
		}
	}
	// Fault edges are wake events: the kernel must take the decision step
	// at exactly the pinned inject/clear instants. faultSteps is sorted, so
	// the first entry past k is the nearest.
	for _, kf := range e.faultSteps {
		if kf > k {
			if kf < next {
				next, cause = kf, pinFaultEdge
			}
			break
		}
	}
	for _, a := range e.running {
		if kc := e.stepAtOrAfter(a.end); kc < next {
			next, cause = kc, pinCompletion
		}
	}
	if q, qc := e.r.QuietHorizonCause(now, e.dt); !math.IsInf(q, 1) {
		if kq := e.stepAtOrAfter(q); kq < next {
			next = kq
			switch {
			case qc == rack.QuietNoPromiser:
				cause = pinNoPromise
			case e.r.FansUnsettled():
				cause = pinFanSlew
			default:
				cause = pinController
			}
		}
	}
	if sampleSteps > 0 {
		if ks := (k/sampleSteps + 1) * sampleSteps; ks < next {
			next, cause = ks, pinSample
		}
	}
	if next <= k {
		next = k + 1
	}
	return next - k, cause
}

// arrivalStep returns the grid step at which the fixed-dt loop admits an
// arrival at time a: the smallest k satisfying the admission predicate.
// The candidate from the division is corrected against the decision
// loop's own float expression — fl(fl(k·dt)+dt), NOT fl((k+1)·dt), which
// can round differently — so the two paths can never disagree on the
// admitting step.
func (e *traceRun) arrivalStep(a float64) int {
	admits := func(k int) bool { return a < float64(k)*e.dt+e.dt }
	k := int(a / e.dt)
	if k < 0 {
		k = 0
	}
	for !admits(k) {
		k++
	}
	for k > 0 && admits(k-1) {
		k--
	}
	return k
}

// buildFaultActions pins every schedule event to its integer grid steps:
// the apply edge at the first step with k·dt ≥ At, the clear edge (for
// windowed events) at the first step with k·dt ≥ Clear. Edges landing past
// the horizon are dropped — a fault injecting too late never happens; a
// clear past the horizon leaves the fault active to the end. An apply and
// its clear pinning to the same step collapse to nothing (a zero-step
// fault window has no observable effect at any decision instant). The
// surviving edges are ordered by step, clears before applies at a shared
// step, declaration order as the final tie-break.
func (e *traceRun) buildFaultActions() {
	for _, ev := range e.tc.Faults.Events {
		ka := e.relStepAtOrAfter(ev.At)
		if ka >= e.steps {
			continue
		}
		if ev.Windowed() {
			kc := e.relStepAtOrAfter(ev.Clear)
			if kc == ka {
				continue
			}
			e.actions = append(e.actions, faultAction{k: ka, apply: true, ev: ev})
			if kc < e.steps {
				e.actions = append(e.actions, faultAction{k: kc, apply: false, ev: ev})
			}
			continue
		}
		e.actions = append(e.actions, faultAction{k: ka, apply: true, ev: ev})
	}
	sort.SliceStable(e.actions, func(a, b int) bool {
		if e.actions[a].k != e.actions[b].k {
			return e.actions[a].k < e.actions[b].k
		}
		return !e.actions[a].apply && e.actions[b].apply
	})
	for _, a := range e.actions {
		e.faultSteps = append(e.faultSteps, a.k)
	}
}

// relStepAtOrAfter returns the smallest grid step k with k·dt ≥ t for a
// trace-relative time t — the pinning rule for fault inject/clear edges.
// The correction loops evaluate the same float expression processStep's
// elapsed uses, so both stepping modes agree on the step.
func (e *traceRun) relStepAtOrAfter(t float64) int {
	k := int(t / e.dt)
	if k < 0 {
		k = 0
	}
	for float64(k)*e.dt < t {
		k++
	}
	for k > 0 && float64(k-1)*e.dt >= t {
		k--
	}
	return k
}

// stepAtOrAfter returns the smallest grid step k with start + k·dt ≥ t —
// the step at which the fixed-dt loop first sees `a.end <= now` for a
// completion at t, and the wake step for a controller horizon at t. The
// correction loops evaluate the identical float expression the decision
// code uses.
func (e *traceRun) stepAtOrAfter(t float64) int {
	k := int((t - e.start) / e.dt)
	if k < 0 {
		k = 0
	}
	for e.start+float64(k)*e.dt < t {
		k++
	}
	for k > 0 && e.start+float64(k-1)*e.dt >= t {
		k--
	}
	return k
}

// Settle advances the rack with no offered load for `duration` seconds —
// the idle stabilization window experiments run before their measured
// trace. With event stepping the whole window collapses into a handful of
// controller-horizon macro windows; otherwise it is the plain fixed-dt
// loop (an integer step count, so a non-integer dt cannot drift the
// window).
func Settle(r *rack.Rack, dt, duration float64, eventStepping bool) error {
	if duration <= 0 {
		return nil
	}
	if eventStepping {
		_, err := RunTraceCfg(r, nil, NewRoundRobin(), TraceConfig{Dt: dt, Horizon: duration, EventStepping: true})
		return err
	}
	for k := int(math.Ceil(duration/dt - 1e-9)); k > 0; k-- {
		r.Step(dt)
	}
	return nil
}
