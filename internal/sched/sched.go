package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cooling"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// Job is one schedulable unit of work.
type Job struct {
	ID       int
	Arrival  float64       // seconds from trace start
	Duration float64       // service time, seconds
	Demand   units.Percent // CPU demand on the server that runs it
}

// JobsFromSpecs converts a loadgen trace into scheduler jobs, assigning
// sequential IDs in arrival order.
func JobsFromSpecs(specs []loadgen.JobSpec) []Job {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = Job{ID: i, Arrival: s.Arrival, Duration: s.Duration, Demand: s.Demand}
	}
	return jobs
}

// ServerView is the dispatcher's telemetry snapshot of one server at a
// placement instant.
type ServerView struct {
	Index      int // slot in the rack
	Name       string
	Load       units.Percent // demand already scheduled on it
	Free       units.Percent // remaining capacity (100 − Load)
	MaxCPUTemp units.Celsius // hottest true die temperature
	InletTemp  units.Celsius // current CPU inlet air temperature
	DCPower    units.Watts   // instantaneous total DC draw
	WallPower  units.Watts   // DC draw lifted through the slot's PSU
}

// Policy decides where a job runs. Place returns the chosen rack slot, or
// -1 to leave the job queued (e.g. no server has the capacity). Views are
// presented in rack order; implementations must be deterministic, breaking
// ties by the lowest index.
type Policy interface {
	Name() string
	// Reset clears internal state so a policy can be reused across runs.
	Reset()
	Place(j Job, views []ServerView) int
}

// fits reports whether the job's demand fits server v's free capacity.
func fits(v ServerView, j Job) bool { return v.Free >= j.Demand }

// ---------------------------------------------------------------------------
// Round-robin

// RoundRobin rotates placements across servers regardless of their state —
// the thermally blind baseline every datacenter dispatcher starts from.
type RoundRobin struct{ next int }

// NewRoundRobin returns the rotating baseline policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Reset implements Policy.
func (p *RoundRobin) Reset() { p.next = 0 }

// Place implements Policy: the first server at or after the cursor with
// enough capacity.
func (p *RoundRobin) Place(j Job, views []ServerView) int {
	n := len(views)
	for k := 0; k < n; k++ {
		v := views[(p.next+k)%n]
		if fits(v, j) {
			p.next = (v.Index + 1) % n
			return v.Index
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Least-utilized

// LeastUtilized places each job on the server with the most free capacity,
// the classic load-balancing heuristic (still thermally blind).
type LeastUtilized struct{}

// NewLeastUtilized returns the load-balancing policy.
func NewLeastUtilized() *LeastUtilized { return &LeastUtilized{} }

// Name implements Policy.
func (p *LeastUtilized) Name() string { return "least-utilized" }

// Reset implements Policy.
func (p *LeastUtilized) Reset() {}

// Place implements Policy.
func (p *LeastUtilized) Place(j Job, views []ServerView) int {
	best := -1
	var bestLoad units.Percent
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.Load < bestLoad {
			best = v.Index
			bestLoad = v.Load
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Coolest-server-first

// CoolestFirst places each job on the feasible server with the lowest die
// temperature — the reactive thermal heuristic. On a heterogeneous rack
// this naturally prefers cold-aisle machines until load warms them past
// their hot-aisle peers.
type CoolestFirst struct{}

// NewCoolestFirst returns the reactive thermal policy.
func NewCoolestFirst() *CoolestFirst { return &CoolestFirst{} }

// Name implements Policy.
func (p *CoolestFirst) Name() string { return "coolest-first" }

// Reset implements Policy.
func (p *CoolestFirst) Reset() {}

// Place implements Policy.
func (p *CoolestFirst) Place(j Job, views []ServerView) int {
	best := -1
	var bestTemp units.Celsius
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		if best < 0 || v.MaxCPUTemp < bestTemp {
			best = v.Index
			bestTemp = v.MaxCPUTemp
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Leakage-aware

// LeakageAware is the proactive policy the paper's machinery enables: for
// every server it precomputes (via internal/lut, i.e. server.SteadyTemp
// under the 75 °C cap) the steady-state fan+leakage power at each
// utilization level, and places each job where the predicted marginal
// fan+leakage power of adding that job's demand is lowest. Active and
// memory power are placement-invariant (the job costs k1·U wherever it
// runs), so the marginal fan+leak term is exactly what a placement can
// save.
type LeakageAware struct {
	tables []*lut.Table // per rack slot
}

// NewLeakageAware precomputes the per-server cost curves with
// lut.BuildPerConfig (identical-physics configs share one build).
func NewLeakageAware(cfgs []server.Config, build lut.BuildConfig) (*LeakageAware, error) {
	tables, err := lut.BuildPerConfig(cfgs, build)
	if err != nil {
		return nil, fmt.Errorf("sched: leakage-aware tables: %w", err)
	}
	return NewLeakageAwareFromTables(tables)
}

// NewLeakageAwareFromTables builds the policy over already-built per-slot
// cost tables (slot i of the rack uses tables[i]). Callers that have
// LUTs for the rack's fan controllers anyway — the rack experiment — can
// hand the same tables in instead of paying for a second grid of
// steady-state solves.
func NewLeakageAwareFromTables(tables []*lut.Table) (*LeakageAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sched: leakage-aware needs at least one table")
	}
	for i, t := range tables {
		if t == nil || len(t.Entries) == 0 {
			return nil, fmt.Errorf("sched: leakage-aware table %d is empty", i)
		}
	}
	return &LeakageAware{tables: tables}, nil
}

// Name implements Policy.
func (p *LeakageAware) Name() string { return "leakage-aware" }

// Reset implements Policy.
func (p *LeakageAware) Reset() {}

// SteadyFanLeakMarginal returns the predicted steady-state fan+leakage
// increase of raising utilization u by d, read from a per-slot cost table
// (lut.Build over server.SteadyTemp). It is the slow, thermally settled
// half of a placement's power cost — the half MarginalDCPower deliberately
// excludes — shared by the table-driven policies and the conservative
// cap-admission estimate.
func SteadyFanLeakMarginal(t *lut.Table, u, d units.Percent) (units.Watts, error) {
	before, err := t.EntryFor(u)
	if err != nil {
		return 0, err
	}
	after, err := t.EntryFor(u + d)
	if err != nil {
		return 0, err
	}
	return after.FanLeakPower - before.FanLeakPower, nil
}

// marginal returns the predicted steady-state fan+leakage increase of
// placing demand d on server i currently loaded at u.
func (p *LeakageAware) marginal(i int, u, d units.Percent) (units.Watts, error) {
	return SteadyFanLeakMarginal(p.tables[i], u, d)
}

// Place implements Policy.
func (p *LeakageAware) Place(j Job, views []ServerView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) {
			continue
		}
		cost, err := p.marginal(v.Index, v.Load, j.Demand)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Cap-aware (wall-power aware)

// CapAware is the delivery-chain-aware refinement of LeakageAware: it
// predicts each placement's marginal *wall* power instead of its marginal
// DC power. The steady-state fan+leakage marginal comes from the same
// per-slot LUTs; the placement-invariant active+memory marginal is added
// back (DC-invariant terms stop being placement-invariant at the wall,
// because each PSU's efficiency depends on how loaded that server already
// is); and the total DC increment is lifted through the slot's PSU curve
// at the server's current draw. Ranking by marginal PSU input is ranking
// by marginal wall power: the shared PDU is monotone in its summed input
// and identical across candidates, so it drops out of the comparison.
type CapAware struct {
	tables []*lut.Table
	models []power.ServerModel
	psus   []*power.PSUModel // nil slice or nil entries = ideal supplies
}

// NewCapAware precomputes per-slot cost curves with lut.BuildPerConfig and
// builds the wall-power-aware policy. psus may be nil (every supply ideal)
// or hold one entry per slot, nil entries meaning an ideal supply.
func NewCapAware(cfgs []server.Config, psus []*power.PSUModel, build lut.BuildConfig) (*CapAware, error) {
	tables, err := lut.BuildPerConfig(cfgs, build)
	if err != nil {
		return nil, fmt.Errorf("sched: cap-aware tables: %w", err)
	}
	models := make([]power.ServerModel, len(cfgs))
	for i, cfg := range cfgs {
		models[i] = cfg.Power
	}
	return NewCapAwareFromTables(tables, models, psus)
}

// NewCapAwareFromTables builds the policy over already-built per-slot cost
// tables and power models (slot i uses tables[i]/models[i]/psus[i]).
func NewCapAwareFromTables(tables []*lut.Table, models []power.ServerModel, psus []*power.PSUModel) (*CapAware, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sched: cap-aware needs at least one table")
	}
	if len(models) != len(tables) {
		return nil, fmt.Errorf("sched: cap-aware has %d tables but %d power models", len(tables), len(models))
	}
	if psus != nil && len(psus) != len(tables) {
		return nil, fmt.Errorf("sched: cap-aware has %d tables but %d PSUs", len(tables), len(psus))
	}
	for i, t := range tables {
		if t == nil || len(t.Entries) == 0 {
			return nil, fmt.Errorf("sched: cap-aware table %d is empty", i)
		}
	}
	return &CapAware{tables: tables, models: models, psus: psus}, nil
}

// Name implements Policy.
func (p *CapAware) Name() string { return "cap-aware" }

// Reset implements Policy.
func (p *CapAware) Reset() {}

// marginalWall returns the predicted marginal wall power of placing demand
// d on the server behind view v: the steady fan+leak increment from the
// LUT plus the active+memory increment, lifted through the slot's PSU at
// the server's current DC draw.
func (p *CapAware) marginalWall(v ServerView, d units.Percent) (units.Watts, error) {
	steady, err := SteadyFanLeakMarginal(p.tables[v.Index], v.Load, d)
	if err != nil {
		return 0, err
	}
	mdc := steady + MarginalDCPower(p.models[v.Index], v.Load, d)
	psu := p.psuFor(v.Index)
	if psu == nil {
		return mdc, nil
	}
	return psu.Wall(v.DCPower+mdc) - psu.Wall(v.DCPower), nil
}

func (p *CapAware) psuFor(i int) *power.PSUModel {
	if p.psus == nil || i >= len(p.psus) {
		return nil
	}
	return p.psus[i]
}

// Place implements Policy: the feasible server with the lowest predicted
// marginal wall power, ties to the lowest index.
func (p *CapAware) Place(j Job, views []ServerView) int {
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) || v.Index >= len(p.tables) {
			continue
		}
		cost, err := p.marginalWall(v, j.Demand)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// PUE-aware (facility aware)

// PUEAware is the facility-scope refinement of CapAware: it predicts each
// placement's marginal *facility* power — the marginal wall power plus the
// marginal CRAC/chiller power spent removing it as heat. Two things change
// relative to cap-aware. First, the cost tables are built at the ambients
// the CRAC actually supplies (the configured ambients shifted by the
// setpoint delta), so the steady fan+leak marginals stay calibrated when
// the operator moves the cold aisle — a facility-blind policy's tables go
// stale the moment the setpoint moves. Second, the wall marginal is
// amplified by the facility's own response: the cooling power added by one
// more wall Watt at the rack's current operating point. The amplification
// is monotone and common to every candidate, so within one placement it
// preserves the wall ranking — the recalibrated tables are what move
// decisions; the amplification is what makes the predicted cost the number
// the facility actually pays.
type PUEAware struct {
	inner *CapAware
	fac   cooling.Facility
}

// NewPUEAware builds the facility-aware policy: per-slot cost tables are
// built at setpoint-corrected ambients (each config's Ambient shifted by
// fac.AmbientDelta), then composed with the slots' PSU curves and the
// facility's cooling response. psus may be nil (ideal supplies) or one
// entry per slot.
func NewPUEAware(cfgs []server.Config, psus []*power.PSUModel, fac cooling.Facility, build lut.BuildConfig) (*PUEAware, error) {
	if err := fac.Validate(); err != nil {
		return nil, fmt.Errorf("sched: pue-aware facility: %w", err)
	}
	shifted := make([]server.Config, len(cfgs))
	delta := fac.AmbientDelta()
	for i, cfg := range cfgs {
		shifted[i] = cfg.ShiftAmbient(delta)
	}
	inner, err := NewCapAware(shifted, psus, build)
	if err != nil {
		return nil, fmt.Errorf("sched: pue-aware tables: %w", err)
	}
	return &PUEAware{inner: inner, fac: fac}, nil
}

// NewPUEAwareFromTables builds the policy over already-built per-slot cost
// tables — which the caller must have built at the facility's operating
// ambients — power models and PSUs (slot i uses tables[i]/models[i]/psus[i]).
func NewPUEAwareFromTables(tables []*lut.Table, models []power.ServerModel, psus []*power.PSUModel, fac cooling.Facility) (*PUEAware, error) {
	if err := fac.Validate(); err != nil {
		return nil, fmt.Errorf("sched: pue-aware facility: %w", err)
	}
	inner, err := NewCapAwareFromTables(tables, models, psus)
	if err != nil {
		return nil, fmt.Errorf("sched: pue-aware: %w", err)
	}
	return &PUEAware{inner: inner, fac: fac}, nil
}

// Name implements Policy.
func (p *PUEAware) Name() string { return "pue-aware" }

// Reset implements Policy.
func (p *PUEAware) Reset() { p.inner.Reset() }

// marginalFacility returns the predicted marginal facility power of
// placing demand d on the server behind view v, given the rack's current
// total wall draw: the marginal wall power plus the extra cooling power
// the facility spends removing it.
func (p *PUEAware) marginalFacility(v ServerView, d units.Percent, rackWallW float64) (units.Watts, error) {
	mw, err := p.inner.marginalWall(v, d)
	if err != nil {
		return 0, err
	}
	cool := p.fac.CoolingPower(rackWallW+float64(mw)) - p.fac.CoolingPower(rackWallW)
	return mw + units.Watts(cool), nil
}

// Place implements Policy: the feasible server with the lowest predicted
// marginal facility power, ties to the lowest index. The rack's wall draw
// is approximated as the sum of the per-slot PSU inputs the views carry
// (the shared PDU sits between them and the true wall, and is monotone).
func (p *PUEAware) Place(j Job, views []ServerView) int {
	var rackWallW float64
	for _, v := range views {
		rackWallW += float64(v.WallPower)
	}
	best := -1
	var bestCost units.Watts
	for _, v := range views {
		if !fits(v, j) || v.Index >= len(p.inner.tables) {
			continue
		}
		cost, err := p.marginalFacility(v, j.Demand, rackWallW)
		if err != nil {
			continue
		}
		if best < 0 || cost < bestCost {
			best = v.Index
			bestCost = cost
		}
	}
	return best
}

// MarginalDCPower returns the DC power increment of raising utilization u
// by d on a server with power model m, counting the utilization-driven
// components (active CPU and memory/IO). Fan and leakage responses are
// slower and policy-dependent; the cap-aware policy adds them from its
// steady-state tables, while the capped trace runner deliberately uses
// only this fast, model-exact part as its admission estimate.
func MarginalDCPower(m power.ServerModel, u, d units.Percent) units.Watts {
	return m.Active.Power(u+d) - m.Active.Power(u) + m.Memory.Power(u+d) - m.Memory.Power(u)
}

// ---------------------------------------------------------------------------
// Trace runner

// Result summarizes the scheduling outcome of one trace run; the physics
// outcome lives in the rack's Telemetry.
type Result struct {
	Submitted   int
	Completed   int     // jobs that finished within the horizon
	Placed      int     // jobs that started (Completed plus still-running)
	MeanWaitSec float64 // mean queueing delay of placed jobs
	MaxQueueLen int     // worst backlog observed
	Deferrals   int     // placements deferred by the wall-power cap
}

// TraceConfig parameterizes a trace run.
type TraceConfig struct {
	Dt      float64 // simulation step, seconds
	Horizon float64 // trace window, seconds

	// WallCapW, when positive, is the rack-level wall-power budget: a
	// placement whose predicted post-placement wall draw strictly exceeds
	// the cap is deferred — the FIFO head blocks and is retried on every
	// subsequent step, so capped runs stay deterministic and starvation
	// free (later jobs never overtake a deferred head). The prediction is
	// rack.WallPowerWithAll over the utilization-driven DC increments
	// (MarginalDCPower) of this job plus every placement already admitted
	// in the same step, whose power the physics has not drawn yet; a
	// placement landing exactly on the cap is admitted. Zero disables
	// capping.
	WallCapW float64

	// CapMarginal, when non-nil, holds one steady-state cost table per
	// rack slot (the same per-slot tables the leakage-aware policies are
	// built from; nil entries fall back to the fast estimate) and makes
	// cap admission conservative: the LUT steady fan+leak marginal is
	// added — clamped at zero, so the estimate can only grow — to
	// MarginalDCPower in the wall-cap check. The fast estimate alone
	// counts only the utilization-driven increment, so fan and leakage
	// transients settling after admission can push the wall draw past the
	// cap; the conservative estimate charges the settled cost up front and
	// therefore defers no later (and possibly earlier) than the fast one.
	CapMarginal []*lut.Table
}

// active is a placed job with its completion time.
type active struct {
	end    float64
	slot   int
	demand units.Percent
}

// RunTrace drives the rack through the job trace under the policy with a
// fixed step dt, from rack-time start for horizon seconds, with no wall
// cap. See RunTraceCfg.
func RunTrace(r *rack.Rack, jobs []Job, p Policy, dt, horizon float64) (Result, error) {
	return RunTraceCfg(r, jobs, p, TraceConfig{Dt: dt, Horizon: horizon})
}

// RunTraceCfg drives the rack through the job trace under the policy. Jobs
// are placed FIFO — the queue head blocks until it fits (and, when
// tc.WallCapW is set, until its placement keeps the predicted wall draw at
// or under the cap), preserving arrival fairness and keeping placement
// order deterministic. Loads are applied before each step, so a job's
// demand is charged from the step after its placement. The step count is
// computed up front and elapsed time as k·dt, so a non-integer dt cannot
// drift the window length or event timing the way an accumulated
// `elapsed += dt` would (cf. the thermal RK4 substep fix).
func RunTraceCfg(r *rack.Rack, jobs []Job, p Policy, tc TraceConfig) (Result, error) {
	dt, horizon := tc.Dt, tc.Horizon
	if dt <= 0 || horizon <= 0 {
		return Result{}, fmt.Errorf("sched: dt and horizon must be positive")
	}
	if !sort.SliceIsSorted(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival }) {
		return Result{}, fmt.Errorf("sched: jobs must be sorted by arrival time")
	}
	p.Reset()

	res := Result{Submitted: len(jobs)}
	loads := make([]units.Percent, r.NumServers())
	views := make([]ServerView, r.NumServers())
	// pendingDC tracks, per slot, the DC increments of placements admitted
	// earlier in the current step: the rack's measured draw lags behind by
	// one step (loads apply at the next Step), so cap admission must count
	// same-step placements or several jobs could jointly breach the cap.
	pendingDC := make([]units.Watts, r.NumServers())
	var pending []Job
	var running []active
	var totalWait float64
	nextJob := 0
	start := r.Now()

	steps := int(math.Ceil(horizon/dt - 1e-9))
	for k := 0; k < steps; k++ {
		elapsed := float64(k) * dt
		now := start + elapsed
		for i := range pendingDC {
			pendingDC[i] = 0
		}

		// Completions first: capacity freed this instant is placeable now.
		keep := running[:0]
		for _, a := range running {
			if a.end <= now {
				loads[a.slot] -= a.demand
				res.Completed++
				continue
			}
			keep = append(keep, a)
		}
		running = keep

		// Arrivals join the FIFO backlog. A job is admitted at the tick of
		// the step interval [elapsed, elapsed+dt) containing its arrival —
		// the standard event-to-fixed-step collapse (anticipation < dt) —
		// so every job with Arrival < horizon is admitted; an
		// `Arrival <= elapsed` rule would silently drop arrivals in the
		// final step of the window.
		for nextJob < len(jobs) && jobs[nextJob].Arrival < elapsed+dt {
			pending = append(pending, jobs[nextJob])
			nextJob++
		}
		if len(pending) > res.MaxQueueLen {
			res.MaxQueueLen = len(pending)
		}

		// Place from the head while the policy accepts.
		for len(pending) > 0 {
			for i := range views {
				views[i] = ServerView{
					Index:      i,
					Name:       r.Name(i),
					Load:       loads[i],
					Free:       100 - loads[i],
					MaxCPUTemp: r.Server(i).MaxCPUTemp(),
					InletTemp:  r.Server(i).InletTemp(),
					DCPower:    r.ServerDCPower(i),
					WallPower:  r.ServerWallPower(i),
				}
			}
			j := pending[0]
			slot := p.Place(j, views)
			if slot < 0 {
				break
			}
			if slot >= len(loads) || loads[slot]+j.Demand > 100 {
				return res, fmt.Errorf("sched: policy %s placed job %d on invalid/overloaded server %d", p.Name(), j.ID, slot)
			}
			if tc.WallCapW > 0 {
				mdc := MarginalDCPower(r.Server(slot).Config().Power, loads[slot], j.Demand)
				if slot < len(tc.CapMarginal) && tc.CapMarginal[slot] != nil {
					// Conservative admission: charge the settled fan+leak
					// cost up front. Clamped at zero so the conservative
					// estimate is never below the fast one.
					if steady, err := SteadyFanLeakMarginal(tc.CapMarginal[slot], loads[slot], j.Demand); err == nil && steady > 0 {
						mdc += steady
					}
				}
				pendingDC[slot] += mdc
				if float64(r.WallPowerWithAll(pendingDC)) > tc.WallCapW {
					// Deferral: the head blocks under the budget and is
					// retried next step, after completions free power.
					pendingDC[slot] -= mdc
					res.Deferrals++
					break
				}
			}
			loads[slot] += j.Demand
			running = append(running, active{end: now + j.Duration, slot: slot, demand: j.Demand})
			// Clamp at zero: admission rounds an arrival down to its step's
			// tick (anticipation < dt), which is not a queueing delay.
			if wait := elapsed - j.Arrival; wait > 0 {
				totalWait += wait
			}
			res.Placed++
			pending = pending[1:]
		}

		for i, u := range loads {
			r.SetLoad(i, u)
		}
		r.Step(dt)
	}
	if res.Placed > 0 {
		res.MeanWaitSec = totalWait / float64(res.Placed)
	}
	return res, nil
}
