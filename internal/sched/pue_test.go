package sched

import (
	"testing"

	"repro/internal/cooling"
	"repro/internal/lut"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/units"
)

// pueViews returns two feasible views with distinct PSU operating points.
func pueViews(psu power.PSUModel) []ServerView {
	return []ServerView{
		{Index: 0, Load: 20, Free: 80, DCPower: 420, WallPower: psu.Wall(420)},
		{Index: 1, Load: 20, Free: 80, DCPower: 680, WallPower: psu.Wall(680)},
	}
}

// TestPUEAwareMatchesCapAwareRankingAtFixedTables: the facility
// amplification is monotone and common to every candidate, so over the
// SAME tables pue-aware must reproduce cap-aware's placements exactly —
// what moves its decisions in practice is table recalibration, which
// NewPUEAware performs and this test's fixture deliberately does not.
func TestPUEAwareMatchesCapAwareRankingAtFixedTables(t *testing.T) {
	psu := power.DefaultPSU()
	model := server.T3Config().Power
	tables := []*lut.Table{flatTable(20, 30, 45), flatTable(20, 30, 45)}
	models := []power.ServerModel{model, model}
	psus := []*power.PSUModel{&psu, &psu}

	ca, err := NewCapAwareFromTables(tables, models, psus)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := NewPUEAwareFromTables(tables, models, psus, cooling.DefaultFacility(22))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []units.Percent{10, 30, 60} {
		v := pueViews(psu)
		if got, want := pa.Place(Job{Demand: d}, v), ca.Place(Job{Demand: d}, v); got != want {
			t.Fatalf("demand %v: pue-aware placed %d, cap-aware %d (same tables must agree)", d, got, want)
		}
	}
}

// TestPUEAwareMarginalIncludesCooling: the predicted marginal facility
// power must exceed the marginal wall power by exactly the facility's
// cooling response at the rack's operating point.
func TestPUEAwareMarginalIncludesCooling(t *testing.T) {
	psu := power.DefaultPSU()
	model := server.T3Config().Power
	tables := []*lut.Table{flatTable(20, 30, 45)}
	fac := cooling.DefaultFacility(22)
	pa, err := NewPUEAwareFromTables(tables, []power.ServerModel{model}, []*power.PSUModel{&psu}, fac)
	if err != nil {
		t.Fatal(err)
	}
	v := ServerView{Index: 0, Load: 20, Free: 80, DCPower: 420, WallPower: psu.Wall(420)}
	const rackWall = 3000.0
	mw, err := pa.inner.marginalWall(v, 30)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := pa.marginalFacility(v, 30, rackWall)
	if err != nil {
		t.Fatal(err)
	}
	wantCool := fac.CoolingPower(rackWall+float64(mw)) - fac.CoolingPower(rackWall)
	if float64(mf-mw) != wantCool {
		t.Fatalf("marginal facility %v − wall %v = %v, want cooling response %g", mf, mw, mf-mw, wantCool)
	}
	if mf <= mw {
		t.Fatalf("facility marginal %v must exceed wall marginal %v", mf, mw)
	}
}

// TestNewPUEAwareRecalibratesTables: constructed from configs, the policy
// must build its cost tables at the setpoint-shifted ambients — a raised
// cold aisle yields strictly costlier steady fan+leak marginals than the
// reference build, which is the signal facility-blind tables miss.
func TestNewPUEAwareRecalibratesTables(t *testing.T) {
	cfgs := []server.Config{server.T3Config(), server.T3Config()}
	cfgs[1].Ambient = 30
	build := lut.DefaultBuild()
	build.Workers = 1

	ref, err := NewPUEAware(cfgs, nil, cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC), build)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewPUEAware(cfgs, nil, cooling.DefaultFacility(cooling.DefaultCRAC().ReferenceC+8), build)
	if err != nil {
		t.Fatal(err)
	}
	for slot := range cfgs {
		refEntry, err := ref.inner.tables[slot].EntryFor(100)
		if err != nil {
			t.Fatal(err)
		}
		warmEntry, err := warm.inner.tables[slot].EntryFor(100)
		if err != nil {
			t.Fatal(err)
		}
		if warmEntry.FanLeakPower <= refEntry.FanLeakPower {
			t.Fatalf("slot %d: warm-aisle table fan+leak %v must exceed reference %v",
				slot, warmEntry.FanLeakPower, refEntry.FanLeakPower)
		}
	}
	// Reference setpoint = zero delta: tables must match a plain cap-aware
	// build over the unshifted configs.
	ca, err := NewCapAware(cfgs, nil, build)
	if err != nil {
		t.Fatal(err)
	}
	for slot := range cfgs {
		a, _ := ref.inner.tables[slot].EntryFor(50)
		b, _ := ca.tables[slot].EntryFor(50)
		if a != b {
			t.Fatalf("slot %d: reference-setpoint table differs from cap-aware build: %+v vs %+v", slot, a, b)
		}
	}
}

// TestNewPUEAwareValidation covers the error paths.
func TestNewPUEAwareValidation(t *testing.T) {
	bad := cooling.DefaultFacility(20)
	bad.Chiller.COP0 = 0
	if _, err := NewPUEAware([]server.Config{server.T3Config()}, nil, bad, lut.DefaultBuild()); err == nil {
		t.Fatal("invalid facility must be rejected")
	}
	if _, err := NewPUEAwareFromTables(nil, nil, nil, cooling.DefaultFacility(20)); err == nil {
		t.Fatal("empty tables must be rejected")
	}
}
