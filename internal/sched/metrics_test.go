package sched

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rack"
)

// pinSum extracts (Σ kernel.pin.*, kernel.steps.total,
// kernel.windows.macro, kernel.grid.steps) from a registry.
func pinSum(reg *obs.Registry) (pins, steps, macro, grid int64) {
	for _, name := range PinReasonNames() {
		pins += reg.Counter("kernel.pin." + name).Value()
	}
	return pins,
		reg.Counter("kernel.steps.total").Value(),
		reg.Counter("kernel.windows.macro").Value(),
		reg.Counter("kernel.grid.steps").Value()
}

// TestPinReasonIdentity is the acceptance identity: every rack advance is
// either a macro window or exactly one pinned single step, so the
// per-reason counts sum to (total rack advances − macro windows), and the
// grid steps crossed add back up to the fixed-dt step count — in both
// stepping modes, with and without faults.
func TestPinReasonIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jobs := randomTrace(t, rng, 1800, 4, 0.4)
	cascade := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FanFail, Server: 0, Fan: 0, At: 300},
		{Kind: fault.PSUFail, Server: 1, At: 600, Clear: 1200},
		{Kind: fault.CRACOutage, At: 900, Clear: 1500},
	}}
	cases := []struct {
		name   string
		event  bool
		faults *fault.Schedule
		sample float64
		ctrl   func(i int) control.Controller
	}{
		{name: "fixed", event: false},
		{name: "event", event: true},
		{name: "event-sampled", event: true, sample: 30},
		{name: "event-faults", event: true, faults: cascade, sample: 15},
		{name: "fixed-faults", event: false, faults: cascade},
		{name: "event-no-promise", event: true, ctrl: func(i int) control.Controller {
			b, err := control.NewBangBang(control.DefaultBangBang())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := eventRack(t, eventRackCfg{servers: 4, workers: 2, ctrl: tc.ctrl})
			reg := obs.NewRegistry()
			res, err := RunTraceCfg(r, jobs, NewCoolestFirst(), TraceConfig{
				Dt: 1, Horizon: 1800,
				EventStepping: tc.event,
				SampleEvery:   tc.sample,
				Faults:        tc.faults,
				Metrics:       reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			pins, steps, macro, grid := pinSum(reg)
			if pins != steps-macro {
				t.Errorf("Σ pins = %d, want steps − macro = %d − %d = %d",
					pins, steps, macro, steps-macro)
			}
			if steps != int64(res.RackSteps) {
				t.Errorf("kernel.steps.total = %d, Result.RackSteps = %d", steps, res.RackSteps)
			}
			if grid != 1800 {
				t.Errorf("kernel.grid.steps = %d, want the full 1800-step grid", grid)
			}
			if !tc.event {
				if fd := reg.Counter("kernel.pin.fixed-dt").Value(); fd != steps || macro != 0 {
					t.Errorf("fixed-dt mode: pin.fixed-dt = %d macro = %d, want %d/0", fd, macro, steps)
				}
			} else if reg.Counter("kernel.pin.fixed-dt").Value() != 0 {
				t.Errorf("event mode must never charge the fixed-dt pin")
			}
			if got := reg.Counter("sched.jobs.submitted").Value(); got != int64(len(jobs)) {
				t.Errorf("sched.jobs.submitted = %d, want %d", got, len(jobs))
			}
			if got := reg.Counter("sched.jobs.completed").Value(); got != int64(res.Completed) {
				t.Errorf("sched.jobs.completed = %d, Result.Completed = %d", got, res.Completed)
			}
			if got := reg.Counter("sched.kills.requeued").Value(); got != int64(res.Requeued) {
				t.Errorf("sched.kills.requeued = %d, Result.Requeued = %d", got, res.Requeued)
			}
			if got := int(reg.Gauge("sched.backlog.highwater").Value()); got != res.MaxQueueLen {
				t.Errorf("sched.backlog.highwater = %d, Result.MaxQueueLen = %d", got, res.MaxQueueLen)
			}
			if res.Metrics != reg {
				t.Errorf("Result.Metrics must echo the attached registry")
			}
			if tc.faults != nil {
				if a := reg.Counter("rack.fault.applied").Value(); a != 3 {
					t.Errorf("rack.fault.applied = %d, want 3", a)
				}
				if c := reg.Counter("rack.fault.cleared").Value(); c != 2 {
					t.Errorf("rack.fault.cleared = %d, want 2", c)
				}
			}
		})
	}
}

// TestMetricsDoNotPerturbRun pins the nil-registry-by-default contract
// from the other side: attaching a registry must not change a single
// scheduling or physics output.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	jobs := randomTrace(t, rng, 1200, 4, 0.5)
	for _, event := range []bool{false, true} {
		run := func(reg *obs.Registry) (Result, rack.Telemetry) {
			r := eventRack(t, eventRackCfg{servers: 4, workers: 2, chain: true, fac: true})
			res, err := RunTraceCfg(r, jobs, NewCoolestFirst(), TraceConfig{
				Dt: 1, Horizon: 1200, EventStepping: event, Metrics: reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, r.Telemetry()
		}
		bare, bareTel := run(nil)
		inst, instTel := run(obs.NewRegistry())
		inst.Metrics = nil // the echo is the only allowed difference
		if bare != inst {
			t.Errorf("event=%v: results diverge with a registry attached:\nnil  %+v\nlive %+v", event, bare, inst)
		}
		if bareTel != instTel {
			t.Errorf("event=%v: telemetry diverges with a registry attached", event)
		}
	}
}

// TestMetricsDumpDeterministicAcrossWorkers runs the same instrumented
// trace at workers=1 and workers=4 and requires byte-identical WriteText
// output — the registry half of the repo's determinism contract (the
// experiment-level version, sharing one registry across concurrent runs,
// lives in internal/experiments).
func TestMetricsDumpDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	jobs := randomTrace(t, rng, 1500, 4, 0.4)
	dump := func(workers int) string {
		r := eventRack(t, eventRackCfg{servers: 4, workers: workers})
		reg := obs.NewRegistry()
		if _, err := RunTraceCfg(r, jobs, NewCoolestFirst(), TraceConfig{
			Dt: 1, Horizon: 1500, EventStepping: true, SampleEvery: 60, Metrics: reg,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, many := dump(1), dump(4)
	if one != many {
		t.Errorf("metrics dump differs across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", one, many)
	}
	if len(one) == 0 {
		t.Fatalf("empty metrics dump")
	}
}
