package sched

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// capRack builds a 2-server fixed-fan rack behind the default delivery
// chain. Servers are constructed in idle equilibrium, so its wall draw is
// constant until a placement changes a load.
func capRack(t *testing.T) *rack.Rack {
	t.Helper()
	psu, pdu := power.DefaultPSU(), power.DefaultPDU()
	specs := make([]rack.ServerSpec, 2)
	for i := range specs {
		cfg := server.T3Config()
		cfg.NoiseSeed = int64(i + 1)
		specs[i] = rack.ServerSpec{Config: cfg}
	}
	r, err := rack.New(rack.Config{Servers: specs, Workers: 1, PSU: &psu, PDU: &pdu})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRunTraceCapBoundary pins the admission boundary: a cap exactly at
// the predicted post-placement wall draw admits the job (no deferral);
// any cap strictly below it defers.
func TestRunTraceCapBoundary(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 0, Duration: 1e9, Demand: 40}}

	// The first placement decision sees the rack exactly as constructed,
	// so the runner's own prediction is reproducible here: round-robin
	// picks slot 0, and the admission estimate is the utilization-driven
	// DC increment lifted through the chain.
	r := capRack(t)
	mdc := MarginalDCPower(r.Server(0).Config().Power, 0, 40)
	predicted := float64(r.WallPowerWith(0, mdc))

	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 60, WallCapW: predicted})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 || res.Deferrals != 0 {
		t.Fatalf("cap exactly at predicted draw: placed=%d deferrals=%d, want 1/0", res.Placed, res.Deferrals)
	}

	r = capRack(t)
	res, err = RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 60, WallCapW: predicted - 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 0 {
		t.Fatalf("cap below predicted draw: placed=%d, want 0", res.Placed)
	}
	if res.Deferrals != 60 {
		t.Fatalf("blocked head must defer once per step: deferrals=%d, want 60", res.Deferrals)
	}
}

// TestRunTraceCapCountsSameStepPlacements: the rack's measured draw lags
// placements by one step, so admission must charge placements admitted
// earlier in the same step. With a budget that fits exactly one job's
// increment, two jobs arriving together must not be jointly admitted
// against the same stale idle draw.
func TestRunTraceCapCountsSameStepPlacements(t *testing.T) {
	r := capRack(t)
	mdc := MarginalDCPower(r.Server(0).Config().Power, 0, 40)
	oneJob := float64(r.WallPowerWith(0, mdc))
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 1e9, Demand: 40},
		{ID: 1, Arrival: 0, Duration: 1e9, Demand: 40},
	}
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 5, WallCapW: oneJob})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 {
		t.Fatalf("budget fits one job: placed=%d, want 1", res.Placed)
	}
	// Job 1 defers at the admission step and on every retry: once the
	// physics draws job 0's power the wall sits at the cap, so adding the
	// second increment always breaches.
	if res.Deferrals != 5 {
		t.Fatalf("deferrals=%d, want 5 (one per step)", res.Deferrals)
	}
}

// TestRunTraceCapBelowIdle: a budget below the rack's idle wall draw can
// never admit anything — every job defers, nothing is placed, and the run
// still terminates after its fixed step count (starvation-free in the
// sense that the runner never spins within a step: one deferral per step,
// later jobs queue FIFO behind the head).
func TestRunTraceCapBelowIdle(t *testing.T) {
	r := capRack(t)
	idleWall := float64(r.WallPower())
	if idleWall <= 0 {
		t.Fatal("rack must draw idle wall power")
	}
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 30, Demand: 20},
		{ID: 1, Arrival: 0, Duration: 30, Demand: 20},
		{ID: 2, Arrival: 10, Duration: 30, Demand: 20},
	}
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 90, WallCapW: idleWall / 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 0 || res.Completed != 0 {
		t.Fatalf("cap below idle: placed=%d completed=%d, want 0/0", res.Placed, res.Completed)
	}
	if res.Deferrals != 90 {
		t.Fatalf("one deferral per step: %d, want 90", res.Deferrals)
	}
	if res.MaxQueueLen != 3 {
		t.Fatalf("backlog must hold all jobs: %d, want 3", res.MaxQueueLen)
	}
	if now := r.Now(); now < 89.5 || now > 90.5 {
		t.Fatalf("run must terminate at the horizon, rack at %g s", now)
	}
}

// TestRunTraceUncappedIgnoresWallBudget: WallCapW = 0 must behave exactly
// like the plain runner.
func TestRunTraceUncappedIgnoresWallBudget(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 0, Duration: 10, Demand: 90}}
	res, err := RunTraceCfg(capRack(t), jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 || res.Deferrals != 0 {
		t.Fatalf("uncapped run deferred: %+v", res)
	}
}

// flatTable returns a synthetic cost table with the given fan+leak power
// at 0/50/100% utilization.
func flatTable(p0, p50, p100 float64) *lut.Table {
	return &lut.Table{Entries: []lut.Entry{
		{Util: 0, RPM: 1800, FanLeakPower: units.Watts(p0)},
		{Util: 50, RPM: 1800, FanLeakPower: units.Watts(p50)},
		{Util: 100, RPM: 2400, FanLeakPower: units.Watts(p100)},
	}}
}

// TestRunTraceCapMarginalDefersEarlier: the conservative admission
// estimate charges the settled fan+leak marginal on top of the fast
// utilization-driven increment, so a cap that sits between the two
// predictions admits under the fast estimate and defers under the
// conservative one.
func TestRunTraceCapMarginalDefersEarlier(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 0, Duration: 1e9, Demand: 40}}
	r := capRack(t)
	mdc := MarginalDCPower(r.Server(0).Config().Power, 0, 40)
	fastWall := float64(r.WallPowerWith(0, mdc))

	// Synthetic per-slot tables with a 25 W settled fan+leak marginal for
	// the 0 → 40% transition (EntryFor rounds 40 up to the 50% row).
	tables := []*lut.Table{flatTable(20, 45, 70), flatTable(20, 45, 70)}

	res, err := RunTraceCfg(r, jobs, NewRoundRobin(),
		TraceConfig{Dt: 1, Horizon: 30, WallCapW: fastWall, CapMarginal: tables})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 0 || res.Deferrals != 30 {
		t.Fatalf("cap at the fast estimate must defer under the conservative one: placed=%d deferrals=%d", res.Placed, res.Deferrals)
	}

	// At the conservative prediction itself, the job is admitted again
	// (a placement landing exactly on the cap is admitted).
	r = capRack(t)
	consWall := float64(r.WallPowerWith(0, mdc+25))
	res, err = RunTraceCfg(r, jobs, NewRoundRobin(),
		TraceConfig{Dt: 1, Horizon: 30, WallCapW: consWall, CapMarginal: tables})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 || res.Deferrals != 0 {
		t.Fatalf("cap at the conservative estimate must admit: placed=%d deferrals=%d", res.Placed, res.Deferrals)
	}
}

// TestRunTraceCapMarginalNeverAdmitsMore sweeps caps across the admission
// boundary and checks the ordering property the option guarantees: for
// the same trace and cap, the conservative variant never places more jobs
// and never defers fewer times than the fast estimate.
func TestRunTraceCapMarginalNeverAdmitsMore(t *testing.T) {
	tables := []*lut.Table{flatTable(20, 45, 70), flatTable(20, 45, 70)}
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 40, Demand: 40},
		{ID: 1, Arrival: 5, Duration: 40, Demand: 40},
		{ID: 2, Arrival: 10, Duration: 40, Demand: 40},
	}
	idle := float64(capRack(t).WallPower())
	for _, capW := range []float64{idle * 0.9, idle + 20, idle + 45, idle + 90, idle + 500} {
		fast, err := RunTraceCfg(capRack(t), jobs, NewRoundRobin(),
			TraceConfig{Dt: 1, Horizon: 60, WallCapW: capW})
		if err != nil {
			t.Fatal(err)
		}
		cons, err := RunTraceCfg(capRack(t), jobs, NewRoundRobin(),
			TraceConfig{Dt: 1, Horizon: 60, WallCapW: capW, CapMarginal: tables})
		if err != nil {
			t.Fatal(err)
		}
		if cons.Placed > fast.Placed {
			t.Fatalf("cap %.0f: conservative placed %d > fast %d", capW, cons.Placed, fast.Placed)
		}
		if cons.Deferrals < fast.Deferrals {
			t.Fatalf("cap %.0f: conservative deferred %d < fast %d", capW, cons.Deferrals, fast.Deferrals)
		}
	}
}

// TestRunTraceCapMarginalNilEntriesFallBack: nil tables (or a short
// slice) leave the fast estimate in place for those slots.
func TestRunTraceCapMarginalNilEntriesFallBack(t *testing.T) {
	jobs := []Job{{ID: 0, Arrival: 0, Duration: 1e9, Demand: 40}}
	r := capRack(t)
	mdc := MarginalDCPower(r.Server(0).Config().Power, 0, 40)
	fastWall := float64(r.WallPowerWith(0, mdc))
	res, err := RunTraceCfg(r, jobs, NewRoundRobin(),
		TraceConfig{Dt: 1, Horizon: 10, WallCapW: fastWall, CapMarginal: []*lut.Table{nil, nil}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 || res.Deferrals != 0 {
		t.Fatalf("nil tables must behave like the fast estimate: %+v", res)
	}
}

// TestCapAwarePrefersEfficientPSUOperatingPoint: with identical DC
// marginals everywhere, the job must go where the supply converts the
// increment most efficiently — the already-loaded server, whose PSU sits
// higher on its efficiency curve. This is exactly the interaction a
// DC-only policy cannot see.
func TestCapAwarePrefersEfficientPSUOperatingPoint(t *testing.T) {
	psu := power.DefaultPSU()
	model := server.T3Config().Power
	tables := []*lut.Table{flatTable(20, 30, 45), flatTable(20, 30, 45)}
	p, err := NewCapAwareFromTables(tables, []power.ServerModel{model, model}, []*power.PSUModel{&psu, &psu})
	if err != nil {
		t.Fatal(err)
	}
	v := []ServerView{
		{Index: 0, Load: 20, Free: 80, DCPower: 420, WallPower: psu.Wall(420)},
		{Index: 1, Load: 20, Free: 80, DCPower: 680, WallPower: psu.Wall(680)},
	}
	if got := p.Place(Job{Demand: 30}, v); got != 1 {
		t.Fatalf("placed on %d, want 1 (PSU already at its efficient point)", got)
	}
	// Without PSUs the same views tie on cost and the lowest index wins.
	p2, err := NewCapAwareFromTables(tables, []power.ServerModel{model, model}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Place(Job{Demand: 30}, v); got != 0 {
		t.Fatalf("ideal supplies: placed on %d, want 0 (tie → lowest index)", got)
	}
}

// TestCapAwareSkipsFullAndRespectsTables: capacity checks and per-slot
// cost differences behave like the leakage-aware baseline.
func TestCapAwareSkipsFullAndRespectsTables(t *testing.T) {
	model := server.T3Config().Power
	// Slot 1's fan+leak marginal is far cheaper, but slot 1 is full.
	tables := []*lut.Table{flatTable(20, 40, 80), flatTable(20, 22, 25)}
	p, err := NewCapAwareFromTables(tables, []power.ServerModel{model, model}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Demand 60 crosses the 50→100 grid boundary: marginal 40 W on slot 0
	// vs 3 W on slot 1 (EntryFor rounds up to the next grid level).
	v := []ServerView{
		{Index: 0, Load: 10, Free: 90, DCPower: 430},
		{Index: 1, Load: 95, Free: 5, DCPower: 640},
	}
	if got := p.Place(Job{Demand: 60}, v); got != 0 {
		t.Fatalf("placed on %d, want 0 (cheap slot is full)", got)
	}
	v[1].Load, v[1].Free = 10, 90
	if got := p.Place(Job{Demand: 60}, v); got != 1 {
		t.Fatalf("placed on %d, want 1 (cheaper marginal)", got)
	}
}

// TestCapAwareConstructorValidation covers the error paths.
func TestCapAwareConstructorValidation(t *testing.T) {
	model := server.T3Config().Power
	tbl := flatTable(1, 2, 3)
	if _, err := NewCapAwareFromTables(nil, nil, nil); err == nil {
		t.Fatal("empty tables must be rejected")
	}
	if _, err := NewCapAwareFromTables([]*lut.Table{tbl}, nil, nil); err == nil {
		t.Fatal("model/table length mismatch must be rejected")
	}
	psu := power.DefaultPSU()
	if _, err := NewCapAwareFromTables([]*lut.Table{tbl}, []power.ServerModel{model}, []*power.PSUModel{&psu, &psu}); err == nil {
		t.Fatal("psu/table length mismatch must be rejected")
	}
	if _, err := NewCapAwareFromTables([]*lut.Table{{}}, []power.ServerModel{model}, nil); err == nil {
		t.Fatal("empty table must be rejected")
	}
}
