package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/loadgen"
	"repro/internal/lut"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/units"
)

// syntheticTable is a hand-built monotone fan table: the event tests need
// LUT controllers (the horizon-promising kind) without paying for a grid
// of steady-state solves per case.
func syntheticTable() *lut.Table {
	return &lut.Table{Entries: []lut.Entry{
		{Util: 0, RPM: 1800, PredictedTemp: 45, FanLeakPower: 18},
		{Util: 30, RPM: 2400, PredictedTemp: 55, FanLeakPower: 24},
		{Util: 60, RPM: 3000, PredictedTemp: 62, FanLeakPower: 33},
		{Util: 100, RPM: 3600, PredictedTemp: 68, FanLeakPower: 46},
	}}
}

// eventRackCfg assembles a heterogeneous rack; every server runs a LUT fan
// controller unless bare is true.
type eventRackCfg struct {
	servers    int
	workers    int
	bare       bool    // no fan controllers
	chain      bool    // PSU + PDU attached
	fac        bool    // CRAC/chiller loop attached
	pollPeriod float64 // LUT poll period; 0 = the paper's 1 s
	ctrl       func(i int) control.Controller
}

func eventRack(t testing.TB, c eventRackCfg) *rack.Rack {
	t.Helper()
	specs := make([]rack.ServerSpec, c.servers)
	for i := range specs {
		cfg := server.T3Config()
		cfg.Ambient = units.Celsius(21 + 3*(i%4))
		cfg.NoiseSeed = int64(1 + 1000*i)
		if i%2 == 1 {
			cfg.Mem.NumDIMMs = 24
		}
		var ctl control.Controller
		if c.ctrl != nil {
			ctl = c.ctrl(i)
		} else if !c.bare {
			lcfg := control.DefaultLUT()
			if c.pollPeriod > 0 {
				lcfg.PollPeriod = c.pollPeriod
			}
			lc, err := control.NewLUT(syntheticTable(), lcfg)
			if err != nil {
				t.Fatal(err)
			}
			ctl = lc
		}
		specs[i] = rack.ServerSpec{Config: cfg, Controller: ctl}
	}
	rc := rack.Config{Servers: specs, Workers: c.workers}
	if c.chain {
		psu, pdu := power.DefaultPSU(), power.DefaultPDU()
		rc.PSU, rc.PDU = &psu, &pdu
	}
	if c.fac {
		fac := cooling.DefaultFacility(20)
		rc.Facility = &fac
	}
	r, err := rack.New(rc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// randomTrace synthesizes a Poisson trace at roughly the given offered
// load per server (fraction of capacity): light traces drain the queue —
// the regime macro windows collapse — while heavy ones keep a backlog that
// pins the kernel to fixed-dt.
func randomTrace(t testing.TB, rng *rand.Rand, horizon float64, servers int, offered float64) []Job {
	t.Helper()
	meanDur := 60 + rng.Float64()*120
	demands := []units.Percent{20, 40}
	rate := offered * float64(servers) * 100 / (meanDur * 30) // E[demand]=30%
	specs, err := loadgen.PoissonTrace(loadgen.PoissonTraceConfig{
		Seed:         rng.Int63(),
		Horizon:      horizon,
		Rate:         rate,
		MeanDuration: meanDur,
		Demands:      demands,
	})
	if err != nil {
		t.Fatal(err)
	}
	return JobsFromSpecs(specs)
}

// runBoth executes the identical trace on twin racks through the fixed-dt
// and event-driven kernels.
func runBoth(t *testing.T, build func() *rack.Rack, jobs []Job, mkPolicy func() Policy, tc TraceConfig) (fixed, event Result, ftel, etel rack.Telemetry) {
	t.Helper()
	rf := build()
	tcf := tc
	tcf.EventStepping = false
	resF, err := RunTraceCfg(rf, jobs, mkPolicy(), tcf)
	if err != nil {
		t.Fatal(err)
	}
	re := build()
	tce := tc
	tce.EventStepping = true
	resE, err := RunTraceCfg(re, jobs, mkPolicy(), tce)
	if err != nil {
		t.Fatal(err)
	}
	return resF, resE, rf.Telemetry(), re.Telemetry()
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if b != 0 {
		d /= math.Abs(b)
	}
	return d
}

// assertEquivalent is the property the tentpole promises: identical
// scheduling outcomes, energies within 1e-6 relative, and fewer rack
// advances.
func assertEquivalent(t *testing.T, label string, fixed, event Result, ftel, etel rack.Telemetry) {
	t.Helper()
	fsched, esched := fixed, event
	fsched.RackSteps, esched.RackSteps = 0, 0
	if fsched != esched {
		t.Errorf("%s: scheduling outcomes differ:\nfixed %+v\nevent %+v", label, fixed, event)
	}
	for _, m := range []struct {
		name string
		f, e float64
		tol  float64
	}{
		{"TotalEnergyKWh", ftel.TotalEnergyKWh, etel.TotalEnergyKWh, 1e-6},
		{"FanEnergyKWh", ftel.FanEnergyKWh, etel.FanEnergyKWh, 1e-6},
		{"WallEnergyKWh", ftel.WallEnergyKWh, etel.WallEnergyKWh, 1e-6},
		{"CoolingEnergyKWh", ftel.CoolingEnergyKWh, etel.CoolingEnergyKWh, 1e-5},
		{"FacilityEnergyKWh", ftel.FacilityEnergyKWh, etel.FacilityEnergyKWh, 1e-6},
	} {
		if d := relDiff(m.e, m.f); d > m.tol {
			t.Errorf("%s: %s off by %g relative (event %g vs fixed %g)", label, m.name, d, m.e, m.f)
		}
	}
	if d := math.Abs(etel.MaxCPUTempC - ftel.MaxCPUTempC); d > 0.3 {
		t.Errorf("%s: MaxCPUTempC off by %g °C", label, d)
	}
	if ftel.FanChanges != etel.FanChanges {
		t.Errorf("%s: fan changes differ: fixed %d event %d", label, ftel.FanChanges, etel.FanChanges)
	}
	if event.RackSteps > fixed.RackSteps {
		t.Errorf("%s: event path took MORE rack steps than fixed: %d vs %d", label, event.RackSteps, fixed.RackSteps)
	}
}

// TestEventTraceMatchesFixed is the randomized equivalence property test:
// random traces × policies × delivery chains × caps, event vs fixed.
func TestEventTraceMatchesFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cases := []struct {
		name     string
		servers  int
		offered  float64 // mean offered load per server
		chain    bool
		fac      bool
		capW     float64
		collapse bool // assert ≥3× fewer rack steps (drained-queue regime)
		mkPolicy func() Policy
	}{
		{"roundrobin", 3, 0.15, false, false, 0, true, func() Policy { return NewRoundRobin() }},
		{"leastutilized", 3, 0.2, true, false, 0, true, func() Policy { return NewLeastUtilized() }},
		{"coolest", 4, 0.25, true, true, 0, true, func() Policy { return NewCoolestFirst() }},
		// A binding cap keeps the kernel pinned to fixed-dt: wall-cap
		// admission depends on evolving fan/leak transients, so backlog
		// windows stay shut there, trading the collapse for exactness.
		{"capped", 3, 0.5, true, false, 1600, false, func() Policy { return NewRoundRobin() }},
		// Saturated but uncapped: LeastUtilized is a LoadOnlyRefuser, so
		// the backlog un-pin macro-steps completion-to-completion even
		// with jobs queued.
		{"saturated", 2, 1.5, false, false, 0, true, func() Policy { return NewLeastUtilized() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs := randomTrace(t, rng, 1800, tc.servers, tc.offered)
			build := func() *rack.Rack {
				return eventRack(t, eventRackCfg{servers: tc.servers, workers: 1, chain: tc.chain, fac: tc.fac})
			}
			cfg := TraceConfig{Dt: 1, Horizon: 1800, WallCapW: tc.capW}
			fixed, event, ftel, etel := runBoth(t, build, jobs, tc.mkPolicy, cfg)
			if tc.capW > 0 && fixed.Deferrals == 0 {
				t.Logf("capped case produced no deferrals; cap too loose for this trace")
			}
			assertEquivalent(t, tc.name, fixed, event, ftel, etel)
			if tc.collapse && event.RackSteps*3 > fixed.RackSteps {
				t.Errorf("%s: only %d→%d rack steps (<3× collapse)", tc.name, fixed.RackSteps, event.RackSteps)
			}
		})
	}
}

// TestEventNonIntegerDt exercises the grid-correction arithmetic: a dt
// that doesn't divide arrival times must still collapse to identical
// admitting steps.
func TestEventNonIntegerDt(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	jobs := randomTrace(t, rng, 900, 2, 0.2)
	build := func() *rack.Rack {
		// PollPeriod = dt: with a sparser poll than the grid the LUT's poll
		// phase is allowed to differ between the two modes (the documented
		// HorizonPromiser caveat); at PollPeriod ≤ dt the collapse is exact.
		return eventRack(t, eventRackCfg{servers: 2, workers: 1, pollPeriod: 0.7})
	}
	cfg := TraceConfig{Dt: 0.7, Horizon: 900}
	fixed, event, ftel, etel := runBoth(t, build, jobs, func() Policy { return NewRoundRobin() }, cfg)
	assertEquivalent(t, "dt=0.7", fixed, event, ftel, etel)
}

// TestGridStepsMatchLoopPredicates pins the event kernel's grid-step
// arithmetic to the decision loop's own float expressions — including the
// one-ulp traps around fl(fl(k·dt)+dt) vs fl((k+1)·dt) — for awkward dt
// values.
func TestGridStepsMatchLoopPredicates(t *testing.T) {
	for _, dt := range []float64{0.3, 0.6, 0.7, 0.9, 1.0 / 3.0, 1} {
		e := &traceRun{dt: dt, start: 300, steps: 1 << 30}
		for k := 0; k < 400; k++ {
			arrivalEdge := float64(k)*dt + dt
			for _, a := range []float64{
				arrivalEdge, math.Nextafter(arrivalEdge, 0), math.Nextafter(arrivalEdge, 1e18),
				float64(k) * dt, float64(k+1) * dt,
			} {
				got := e.arrivalStep(a)
				want := 0
				for !(a < float64(want)*dt+dt) { // the fixed loop's admission predicate
					want++
				}
				if got != want {
					t.Fatalf("dt=%g a=%v: arrivalStep=%d, loop admits at %d", dt, a, got, want)
				}
			}
			end := e.start + float64(k)*dt
			for _, v := range []float64{end, math.Nextafter(end, 0), math.Nextafter(end, 1e18)} {
				got := e.stepAtOrAfter(v)
				want := 0
				for e.start+float64(want)*dt < v { // the fixed loop's completion predicate
					want++
				}
				if got != want {
					t.Fatalf("dt=%g t=%v: stepAtOrAfter=%d, loop completes at %d", dt, v, got, want)
				}
			}
		}
	}
}

// TestEventDegenerateNoJobs: with zero jobs the kernel must cross the
// whole horizon in a handful of controller-horizon macro windows — one
// initial fan command, its slew, one hold-off expiry check, then quiet to
// the end.
func TestEventDegenerateNoJobs(t *testing.T) {
	build := func() *rack.Rack {
		return eventRack(t, eventRackCfg{servers: 3, workers: 1})
	}
	fixed, event, ftel, etel := runBoth(t, build, nil, func() Policy { return NewRoundRobin() }, TraceConfig{Dt: 1, Horizon: 3600})
	assertEquivalent(t, "nojobs", fixed, event, ftel, etel)
	if fixed.RackSteps != 3600 {
		t.Fatalf("fixed path took %d steps, want 3600", fixed.RackSteps)
	}
	if event.RackSteps > 80 {
		t.Fatalf("degenerate trace took %d rack advances, want a handful (controller wake-ups + fan slew only)", event.RackSteps)
	}
}

// nonPromisingController is a controller the kernel cannot see a horizon
// for: it must pin event stepping to one tick per grid step.
type nonPromisingController struct{ control.Controller }

func (nonPromisingController) Name() string { return "opaque" }

// TestEventPinnedWithoutHorizon: a single non-promising controller
// anywhere in the rack forces the reference cadence — RackSteps equals the
// fixed-dt step count and results match it exactly.
func TestEventPinnedWithoutHorizon(t *testing.T) {
	mk := func() *rack.Rack {
		return eventRack(t, eventRackCfg{servers: 2, workers: 1, ctrl: func(i int) control.Controller {
			lc, err := control.NewLUT(syntheticTable(), control.DefaultLUT())
			if err != nil {
				t.Fatal(err)
			}
			if i == 1 {
				return nonPromisingController{lc} // hides the QuietUntil method
			}
			return lc
		}})
	}
	rng := rand.New(rand.NewSource(5))
	jobs := randomTrace(t, rng, 600, 2, 0.3)
	re := mk()
	res, err := RunTraceCfg(re, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 600, EventStepping: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RackSteps != 600 {
		t.Fatalf("non-promising controller should pin to 600 rack steps, got %d", res.RackSteps)
	}
}

// TestEventWorkerCountInvariant: the event kernel inherits the repo-wide
// determinism contract — byte-identical results for any rack worker bound
// (run under -race in CI).
func TestEventWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	jobs := randomTrace(t, rng, 1200, 4, 0.25)
	run := func(workers int) (Result, rack.Telemetry) {
		r := eventRack(t, eventRackCfg{servers: 4, workers: workers, chain: true})
		res, err := RunTraceCfg(r, jobs, NewCoolestFirst(), TraceConfig{Dt: 1, Horizon: 1200, EventStepping: true})
		if err != nil {
			t.Fatal(err)
		}
		return res, r.Telemetry()
	}
	res1, tel1 := run(1)
	resN, telN := run(4)
	if res1 != resN {
		t.Fatalf("scheduling results differ across workers:\n1: %+v\nN: %+v", res1, resN)
	}
	if tel1 != telN {
		t.Fatalf("telemetry differs across workers:\n1: %+v\nN: %+v", tel1, telN)
	}
}

// TestSettleEventMatchesFixed: the exported stabilization helper must land
// both paths on the same equilibrium.
func TestSettleEventMatchesFixed(t *testing.T) {
	rf := eventRack(t, eventRackCfg{servers: 2, workers: 1})
	if err := Settle(rf, 1, 600, false); err != nil {
		t.Fatal(err)
	}
	re := eventRack(t, eventRackCfg{servers: 2, workers: 1})
	if err := Settle(re, 1, 600, true); err != nil {
		t.Fatal(err)
	}
	if rf.Now() != re.Now() {
		t.Fatalf("clocks differ after settle: %g vs %g", rf.Now(), re.Now())
	}
	for i := 0; i < rf.NumServers(); i++ {
		if d := math.Abs(float64(rf.Server(i).MaxCPUTemp() - re.Server(i).MaxCPUTemp())); d > 0.05 {
			t.Fatalf("server %d settle temp off by %g", i, d)
		}
	}
}
