package sched

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rack"
	"repro/internal/units"
)

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// PolicyState is the serializable internal state of a stateful placement
// policy — a generic tagged bag (like control.State) so the checkpoint
// layer never needs one DTO per policy. Name must match the policy the
// state is restored into.
type PolicyState struct {
	Name string
	Ints []int
}

// StatefulPolicy is the opt-in interface a Policy with internal mutable
// state must implement to survive a checkpoint/resume cycle. Stateless
// policies (everything shipped except RoundRobin) need not implement it;
// a checkpoint of a run under a stateful policy that does not is refused
// at capture time rather than silently resuming with a reset cursor.
type StatefulPolicy interface {
	PolicyState() PolicyState
	SetPolicyState(PolicyState) error
}

// PolicyState implements StatefulPolicy: the rotation cursor.
func (p *RoundRobin) PolicyState() PolicyState {
	return PolicyState{Name: p.Name(), Ints: []int{p.next}}
}

// SetPolicyState implements StatefulPolicy.
func (p *RoundRobin) SetPolicyState(st PolicyState) error {
	if st.Name != p.Name() {
		return fmt.Errorf("sched: policy state is for %q, policy is %q", st.Name, p.Name())
	}
	if len(st.Ints) != 1 || st.Ints[0] < 0 {
		return fmt.Errorf("sched: malformed round-robin state")
	}
	p.next = st.Ints[0]
	return nil
}

// ActiveJob is the serializable image of one placed job in flight.
type ActiveJob struct {
	End    float64 // absolute completion instant
	Slot   int
	Demand units.Percent
	Job    Job
	Start  float64 // trace-relative placement instant
}

// Counts is the subset of Result accumulated up to a checkpoint instant.
// MeanWaitSec is derived (TotalWait / Placed) at run end and Metrics rides
// in the registry image, so neither appears here.
type Counts struct {
	Submitted      int
	Completed      int
	Placed         int
	MaxQueueLen    int
	Deferrals      int
	RackSteps      int
	Backfills      int
	Requeued       int
	Lost           int
	LostJobSeconds float64
}

// Checkpoint is the full resumable state of a RunTraceCfg execution at a
// decision-step boundary — the only legal checkpoint instants: the top of
// the run loop, before processStep(k), where no fan-out is in flight and
// every macro window has fully landed. ResumeTraceCfg continues a run from
// one such that the completed run is byte-identical — Result and metrics
// dump — to the same run left uninterrupted, for both kernels, any worker
// count, with or without faults.
//
// A checkpoint is only as portable as its inputs: the resuming process
// must rebuild the rack from the identical Config, pass the identical job
// slice and TraceConfig (dt, horizon, kernel, cap, backfill, fault
// schedule), and supply the same policy. The config scalars carried here
// are cross-checks that catch operator error, not a substitute for them.
type Checkpoint struct {
	// K is the next grid step to process.
	K     int
	Steps int
	Start float64 // rack-time at run start (NOT the resume instant)

	// Config cross-checks (must equal the resuming TraceConfig).
	Dt            float64
	Horizon       float64
	EventStepping bool
	WallCapW      float64
	Backfill      bool
	SampleEvery   float64
	DropOnFault   bool
	PolicyName    string

	// Run cursor.
	Pending    []Job
	Running    []ActiveJob
	Loads      []float64 // dispatcher's per-slot committed demand
	TotalWait  float64
	NextJob    int
	NextAction int
	Counts     Counts
	Policy     *PolicyState // nil for stateless policies

	// Physics and observability images.
	Rack rack.State
	Obs  obs.State
}

// Cancelled is the error RunTraceCfg returns when TraceConfig.Ctx is
// cancelled: the run stopped at a decision-step boundary, the partial
// Result was still returned, and Checkpoint resumes the run where it
// stopped. Unwrap exposes the context's own error (context.Canceled or
// context.DeadlineExceeded), so errors.Is keeps working.
type Cancelled struct {
	Checkpoint Checkpoint
	Err        error
}

func (c *Cancelled) Error() string {
	return fmt.Sprintf("sched: run cancelled at step %d/%d (%v); checkpoint captured",
		c.Checkpoint.K, c.Checkpoint.Steps, c.Err)
}

func (c *Cancelled) Unwrap() error { return c.Err }

// Diverged is the error the NaN/Inf guard returns when the rack's folded
// state sum goes non-finite after an advance: the physics has left the
// representable regime (a bad parameterization or a genuine bug), and
// continuing would only smear NaNs through every meter. Checkpoint is a
// diagnostic snapshot at the failing boundary — inspectable, but carrying
// the non-finite state, so it is not a sane resume point.
type Diverged struct {
	Step       int     // grid step after which the divergence was detected
	StateSum   float64 // the poisoned rack.StateSum fold
	DCW, WallW float64 // aggregate draws at detection, for the log line
	Checkpoint Checkpoint
}

func (d *Diverged) Error() string {
	return fmt.Sprintf("sched: non-finite rack state after step %d (state sum %g, DC %g W, wall %g W); diagnostic snapshot captured",
		d.Step, d.StateSum, d.DCW, d.WallW)
}

// checkpoint captures the run at the top of decision step k. It only reads
// state, so taking one cannot perturb the run.
func (e *traceRun) checkpoint(k int) (Checkpoint, error) {
	rs, err := e.r.Snapshot()
	if err != nil {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint at step %d: %w", k, err)
	}
	ck := Checkpoint{
		K:             k,
		Steps:         e.steps,
		Start:         e.start,
		Dt:            e.dt,
		Horizon:       e.tc.Horizon,
		EventStepping: e.tc.EventStepping,
		WallCapW:      e.tc.WallCapW,
		Backfill:      e.tc.Backfill,
		SampleEvery:   e.tc.SampleEvery,
		DropOnFault:   e.tc.DropOnFault,
		PolicyName:    e.p.Name(),
		Pending:       append([]Job(nil), e.pending...),
		Running:       make([]ActiveJob, len(e.running)),
		Loads:         make([]float64, len(e.loads)),
		TotalWait:     e.totalWait,
		NextJob:       e.nextJob,
		NextAction:    e.nextAction,
		Counts: Counts{
			Submitted:      e.res.Submitted,
			Completed:      e.res.Completed,
			Placed:         e.res.Placed,
			MaxQueueLen:    e.res.MaxQueueLen,
			Deferrals:      e.res.Deferrals,
			RackSteps:      e.res.RackSteps,
			Backfills:      e.res.Backfills,
			Requeued:       e.res.Requeued,
			Lost:           e.res.Lost,
			LostJobSeconds: e.res.LostJobSeconds,
		},
		Rack: rs,
	}
	for i, a := range e.running {
		ck.Running[i] = ActiveJob{End: a.end, Slot: a.slot, Demand: a.demand, Job: a.job, Start: a.start}
	}
	for i, u := range e.loads {
		ck.Loads[i] = float64(u)
	}
	if sp, ok := e.p.(StatefulPolicy); ok {
		ps := sp.PolicyState()
		ck.Policy = &ps
	}
	if e.tc.Metrics != nil {
		ck.Obs = e.tc.Metrics.ExportState()
	}
	return ck, nil
}

// restore loads a checkpoint into a freshly constructed traceRun, cross-
// checking every configuration scalar the checkpoint carries. The slices
// are deep-copied so the caller's Checkpoint stays reusable.
func (e *traceRun) restore(ck Checkpoint) error {
	switch {
	case ck.Dt != e.tc.Dt || ck.Horizon != e.tc.Horizon:
		return fmt.Errorf("sched: resume: checkpoint ran dt=%g horizon=%g, config has dt=%g horizon=%g",
			ck.Dt, ck.Horizon, e.tc.Dt, e.tc.Horizon)
	case ck.EventStepping != e.tc.EventStepping:
		return fmt.Errorf("sched: resume: checkpoint kernel (eventStepping=%v) does not match config", ck.EventStepping)
	case ck.WallCapW != e.tc.WallCapW || ck.Backfill != e.tc.Backfill ||
		ck.SampleEvery != e.tc.SampleEvery || ck.DropOnFault != e.tc.DropOnFault:
		return fmt.Errorf("sched: resume: checkpoint cap/backfill/sample/drop settings do not match config")
	case ck.Steps != e.steps:
		return fmt.Errorf("sched: resume: checkpoint has %d grid steps, config derives %d", ck.Steps, e.steps)
	case ck.K < 0 || ck.K > e.steps:
		return fmt.Errorf("sched: resume: checkpoint step %d outside [0, %d]", ck.K, e.steps)
	case ck.PolicyName != e.p.Name():
		return fmt.Errorf("sched: resume: checkpoint ran policy %q, got %q", ck.PolicyName, e.p.Name())
	case ck.Counts.Submitted != len(e.jobs):
		return fmt.Errorf("sched: resume: checkpoint ran %d jobs, trace has %d", ck.Counts.Submitted, len(e.jobs))
	case ck.NextJob < 0 || ck.NextJob > len(e.jobs):
		return fmt.Errorf("sched: resume: job cursor %d outside [0, %d]", ck.NextJob, len(e.jobs))
	case ck.NextAction < 0 || ck.NextAction > len(e.actions):
		return fmt.Errorf("sched: resume: fault cursor %d outside [0, %d]", ck.NextAction, len(e.actions))
	case len(ck.Loads) != len(e.loads):
		return fmt.Errorf("sched: resume: checkpoint has %d load slots, rack has %d", len(ck.Loads), len(e.loads))
	}
	for _, a := range ck.Running {
		if a.Slot < 0 || a.Slot >= len(e.loads) {
			return fmt.Errorf("sched: resume: running job %d on slot %d, rack has %d", a.Job.ID, a.Slot, len(e.loads))
		}
	}
	sp, stateful := e.p.(StatefulPolicy)
	if stateful != (ck.Policy != nil) {
		return fmt.Errorf("sched: resume: policy %q statefulness does not match checkpoint", e.p.Name())
	}
	e.p.Reset()
	if stateful {
		if err := sp.SetPolicyState(*ck.Policy); err != nil {
			return fmt.Errorf("sched: resume: %w", err)
		}
	}
	if err := e.r.Restore(ck.Rack); err != nil {
		return fmt.Errorf("sched: resume: %w", err)
	}
	if e.tc.Metrics != nil {
		if err := e.tc.Metrics.ImportState(ck.Obs); err != nil {
			return fmt.Errorf("sched: resume: %w", err)
		}
	}
	e.k0 = ck.K
	e.start = ck.Start
	e.pending = append([]Job(nil), ck.Pending...)
	e.running = make([]active, len(ck.Running))
	for i, a := range ck.Running {
		e.running[i] = active{end: a.End, slot: a.Slot, demand: a.Demand, job: a.Job, start: a.Start}
	}
	for i, u := range ck.Loads {
		e.loads[i] = units.Percent(u)
	}
	e.totalWait = ck.TotalWait
	e.nextJob = ck.NextJob
	e.nextAction = ck.NextAction
	e.res = Result{
		Submitted:      ck.Counts.Submitted,
		Completed:      ck.Counts.Completed,
		Placed:         ck.Counts.Placed,
		MaxQueueLen:    ck.Counts.MaxQueueLen,
		Deferrals:      ck.Counts.Deferrals,
		RackSteps:      ck.Counts.RackSteps,
		Backfills:      ck.Counts.Backfills,
		Requeued:       ck.Counts.Requeued,
		Lost:           ck.Counts.Lost,
		LostJobSeconds: ck.Counts.LostJobSeconds,
	}
	// Advance the periodic-checkpoint cadence past the resume point with
	// the same repeated additions the uninterrupted run performs, so both
	// runs fire later checkpoints at identical instants.
	for e.tc.CheckpointSink != nil && e.nextCkpt <= float64(e.k0)*e.dt {
		e.nextCkpt += e.tc.CheckpointEvery
	}
	return nil
}

// ResumeTraceCfg continues a run from a Checkpoint captured by the same
// (rack config, jobs, policy, TraceConfig) combination: the rack must be
// freshly built from the identical Config (Restore loads the checkpoint's
// physics into it), jobs and tc must be the originals, and p must be the
// same policy implementation. The returned Result — and, with tc.Metrics
// attached, the metrics dump — is byte-identical to the uninterrupted run.
//
// Unlike RunTraceCfg this neither resets the policy to its zero state nor
// re-counts the submitted jobs: both are restored from the checkpoint.
//
// tc.Metrics, when attached, should be a fresh registry: the checkpoint's
// metric image is imported into it (kernel.*/sched.* counters resume where
// they stopped), and the rack's physics roll-up is folded once at run end.
// Reusing a registry that already holds a prior run's post-run fold would
// double-count the additive rack.* counters.
func ResumeTraceCfg(r *rack.Rack, jobs []Job, p Policy, tc TraceConfig, ck Checkpoint) (Result, error) {
	e, err := newTraceRun(r, jobs, p, tc)
	if err != nil {
		return Result{}, err
	}
	if err := e.restore(ck); err != nil {
		return Result{}, err
	}
	return e.run()
}

// boundary runs the run-control hooks at the top of decision step k — the
// only legal checkpoint instants: cooperative cancellation first, then the
// periodic checkpoint cadence. Both kernels call it before processStep(k),
// so in event mode checkpoints land exactly on macro-window boundaries.
func (e *traceRun) boundary(k int) error {
	if e.tc.Ctx != nil {
		if cerr := e.tc.Ctx.Err(); cerr != nil {
			ck, err := e.checkpoint(k)
			if err != nil {
				return fmt.Errorf("sched: cancelled at step %d, snapshot failed: %w", k, err)
			}
			return &Cancelled{Checkpoint: ck, Err: cerr}
		}
	}
	if e.tc.CheckpointSink != nil && float64(k)*e.dt >= e.nextCkpt {
		ck, err := e.checkpoint(k)
		if err != nil {
			return err
		}
		if err := e.tc.CheckpointSink(ck); err != nil {
			return fmt.Errorf("sched: checkpoint sink at step %d: %w", k, err)
		}
		for e.nextCkpt <= float64(k)*e.dt {
			e.nextCkpt += e.tc.CheckpointEvery
		}
	}
	return nil
}

// checkFinite is the divergence guard both kernels run after every rack
// advance: one read of rack.StateSum, the NaN-transparent fold of every
// thermal node, DIMM, fan, and power aggregate. The max-style telemetry
// roll-ups skip NaN in their comparisons and the leakage curve clamps
// temperature, so a poisoned node can otherwise coast silently to the
// horizon; the sum cannot hide it. k is the grid step the run has
// advanced to.
func (e *traceRun) checkFinite(k int) error {
	sum := e.r.StateSum()
	if isFinite(sum) {
		return nil
	}
	// Best-effort diagnostic snapshot: the state is non-finite, so a
	// capture error is secondary to reporting the divergence itself.
	ck, _ := e.checkpoint(k)
	return &Diverged{
		Step: k, StateSum: sum,
		DCW: float64(e.r.DCPower()), WallW: float64(e.r.WallPower()),
		Checkpoint: ck,
	}
}
