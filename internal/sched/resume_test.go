package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/control"
	"repro/internal/cooling"
	"repro/internal/fault"
	"repro/internal/lut"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/snap"
	"repro/internal/units"
)

// resumeRackTable builds the one LUT every resume-suite rack shares.
func resumeRackTable(t *testing.T) *lut.Table {
	t.Helper()
	table, err := lut.Build(server.T3Config(), lut.DefaultBuild())
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// resumeRack builds an n-server controllered rack; facility attaches the
// full delivery chain and cooling loop so the facility-scope meters and
// fault state ride through the snapshot too.
func resumeRack(t *testing.T, table *lut.Table, n, workers int, facility bool) *rack.Rack {
	t.Helper()
	specs := make([]rack.ServerSpec, n)
	for i := range specs {
		lc, err := control.NewLUT(table, control.DefaultLUT())
		if err != nil {
			t.Fatal(err)
		}
		c := server.T3Config()
		c.NoiseSeed = int64(i + 1)
		specs[i] = rack.ServerSpec{Config: c, Controller: lc}
	}
	rc := rack.Config{Servers: specs, Workers: workers, ReliabilitySampleEvery: 15}
	if facility {
		psu, pdu := power.DefaultPSU(), power.DefaultPDU()
		fac := cooling.DefaultFacility(18)
		rc.PSU, rc.PDU, rc.Facility = &psu, &pdu, &fac
	}
	r, err := rack.New(rc)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// stripMetrics zeroes the registry pointer so Results compare by value.
func stripMetrics(r Result) Result { r.Metrics = nil; return r }

func dumpRegistry(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

var errInterrupt = errors.New("test interrupt")

// interruptAt runs the trace until the first periodic checkpoint at or
// past truncAt seconds, captures it, aborts, and round-trips the
// checkpoint through the snap container — so the suite proves the on-disk
// image, not just the in-memory struct, resumes byte-identically.
func interruptAt(t *testing.T, r *rack.Rack, jobs []Job, p Policy, tc TraceConfig, truncAt float64) Checkpoint {
	t.Helper()
	var captured *Checkpoint
	tc.CheckpointEvery = truncAt
	tc.CheckpointSink = func(ck Checkpoint) error {
		captured = &ck
		return errInterrupt
	}
	_, err := RunTraceCfg(r, jobs, p, tc)
	if !errors.Is(err, errInterrupt) {
		t.Fatalf("interrupted run returned %v, want the sink's error", err)
	}
	if captured == nil {
		t.Fatal("sink error without a captured checkpoint")
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf, *captured); err != nil {
		t.Fatalf("checkpoint does not gob-encode: %v", err)
	}
	var ck Checkpoint
	if err := snap.Decode(bytes.NewReader(buf.Bytes()), &ck); err != nil {
		t.Fatalf("checkpoint does not gob-decode: %v", err)
	}
	return ck
}

// TestResumeEquivalence is the tentpole property: interrupt-at-T-then-
// resume is byte-identical to the uninterrupted run — Result, full rack
// telemetry and the metrics dump — across truncation point × kernel ×
// policy × worker count × fault schedule, with the checkpoint carried
// through the snap container. The uninterrupted reference runs serial
// (workers=1) while the interrupted+resumed run fans out (workers=4), so
// one comparison also pins worker-count invariance. Run under -race.
func TestResumeEquivalence(t *testing.T) {
	table := resumeRackTable(t)
	const n, horizon = 4, 500.0
	jobs := faultTraceJobs(t, 400)
	rng := rand.New(rand.NewSource(1234))

	cascade := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FanStick, Server: 0, Fan: 0, At: 90, Clear: 300},
		{Kind: fault.PSUFail, Server: 1, At: 140, Clear: 320},
		{Kind: fault.CRACOutage, At: 200, Clear: 380, Severity: 4},
		{Kind: fault.ChillerDegraded, At: 210, Clear: 390, Severity: 0.2},
	}}
	cascade.Sort()

	policies := map[string]func() Policy{
		"round-robin":   func() Policy { return NewRoundRobin() }, // stateful cursor
		"coolest-first": func() Policy { return NewCoolestFirst() },
	}

	for name, mkP := range policies {
		for _, event := range []bool{false, true} {
			for _, sch := range []*fault.Schedule{nil, cascade, randomSchedule(rng, n, horizon)} {
				facility := sch == cascade // the facility trace is the cascade one
				truncAt := 60 + rng.Float64()*horizon*0.7
				label := fmt.Sprintf("%s event=%v faults=%v trunc=%.1f", name, event, sch != nil, truncAt)
				tc := TraceConfig{
					Dt: 1, Horizon: horizon, EventStepping: event,
					SampleEvery: 15, Faults: sch,
				}

				// Uninterrupted reference, serial.
				rA := resumeRack(t, table, n, 1, facility)
				regA := obs.NewRegistry()
				tcA := tc
				tcA.Metrics = regA
				resA, err := RunTraceCfg(rA, jobs, mkP(), tcA)
				if err != nil {
					t.Fatalf("%s: reference run: %v", label, err)
				}

				// Interrupted at truncAt, parallel.
				rB := resumeRack(t, table, n, 4, facility)
				tcB := tc
				tcB.Metrics = obs.NewRegistry()
				ck := interruptAt(t, rB, jobs, mkP(), tcB, truncAt)
				if ck.K <= 0 || ck.K >= ck.Steps {
					t.Fatalf("%s: degenerate truncation step %d/%d", label, ck.K, ck.Steps)
				}

				// Resumed on a fresh rack and fresh registry, parallel.
				rC := resumeRack(t, table, n, 4, facility)
				regC := obs.NewRegistry()
				tcC := tc
				tcC.Metrics = regC
				resC, err := ResumeTraceCfg(rC, jobs, mkP(), tcC, ck)
				if err != nil {
					t.Fatalf("%s: resume: %v", label, err)
				}

				if !reflect.DeepEqual(stripMetrics(resA), stripMetrics(resC)) {
					t.Fatalf("%s: resumed Result differs\nfull:    %+v\nresumed: %+v",
						label, stripMetrics(resA), stripMetrics(resC))
				}
				telA, telC := rA.Telemetry(), rC.Telemetry()
				if !reflect.DeepEqual(telA, telC) {
					t.Fatalf("%s: resumed telemetry differs\nfull:    %+v\nresumed: %+v", label, telA, telC)
				}
				dumpA, dumpC := dumpRegistry(t, regA), dumpRegistry(t, regC)
				if dumpA != dumpC {
					t.Fatalf("%s: metrics dumps differ\n--- full ---\n%s\n--- resumed ---\n%s", label, dumpA, dumpC)
				}
			}
		}
	}
}

// TestCancelReturnsPartialResultAndResumes: cancelling mid-run (the sink
// pulls the trigger, the boundary check notices) returns the partial
// Result alongside a *Cancelled whose checkpoint resumes to the identical
// final state.
func TestCancelReturnsPartialResultAndResumes(t *testing.T) {
	table := resumeRackTable(t)
	const n, horizon = 3, 400.0
	jobs := faultTraceJobs(t, 300)
	for _, event := range []bool{false, true} {
		tc := TraceConfig{Dt: 1, Horizon: horizon, EventStepping: event, SampleEvery: 15}

		rA := resumeRack(t, table, n, 1, false)
		resA, err := RunTraceCfg(rA, jobs, NewRoundRobin(), tc)
		if err != nil {
			t.Fatalf("event=%v: reference: %v", event, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		rB := resumeRack(t, table, n, 1, false)
		tcB := tc
		tcB.Ctx = ctx
		tcB.CheckpointEvery = 150
		tcB.CheckpointSink = func(Checkpoint) error { cancel(); return nil }
		partial, err := RunTraceCfg(rB, jobs, NewRoundRobin(), tcB)
		var c *Cancelled
		if !errors.As(err, &c) {
			t.Fatalf("event=%v: got %v, want *Cancelled", event, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("event=%v: Cancelled must unwrap to context.Canceled", event)
		}
		if partial.Submitted != len(jobs) || partial.RackSteps <= 0 || partial.RackSteps >= resA.RackSteps {
			t.Fatalf("event=%v: partial result not partial: %+v", event, partial)
		}
		if c.Checkpoint.K <= 0 || c.Checkpoint.K >= c.Checkpoint.Steps {
			t.Fatalf("event=%v: cancel checkpoint at degenerate step %d", event, c.Checkpoint.K)
		}

		rC := resumeRack(t, table, n, 1, false)
		resC, err := ResumeTraceCfg(rC, jobs, NewRoundRobin(), tc, c.Checkpoint)
		if err != nil {
			t.Fatalf("event=%v: resume from cancel: %v", event, err)
		}
		if !reflect.DeepEqual(stripMetrics(resA), stripMetrics(resC)) {
			t.Fatalf("event=%v: resume-from-cancel differs\nfull:    %+v\nresumed: %+v",
				event, stripMetrics(resA), stripMetrics(resC))
		}
		if !reflect.DeepEqual(rA.Telemetry(), rC.Telemetry()) {
			t.Fatalf("event=%v: resume-from-cancel telemetry differs", event)
		}
	}
}

// TestCancelBeforeStart: an already-cancelled context stops the run at
// step 0 with a checkpoint that replays the whole trace.
func TestCancelBeforeStart(t *testing.T) {
	table := resumeRackTable(t)
	jobs := faultTraceJobs(t, 200)
	tc := TraceConfig{Dt: 1, Horizon: 300}

	rA := resumeRack(t, table, 2, 1, false)
	resA, err := RunTraceCfg(rA, jobs, NewRoundRobin(), tc)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rB := resumeRack(t, table, 2, 1, false)
	tcB := tc
	tcB.Ctx = ctx
	partial, err := RunTraceCfg(rB, jobs, NewRoundRobin(), tcB)
	var c *Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("got %v, want *Cancelled", err)
	}
	if partial.RackSteps != 0 || c.Checkpoint.K != 0 {
		t.Fatalf("pre-cancelled run advanced: steps=%d K=%d", partial.RackSteps, c.Checkpoint.K)
	}
	rC := resumeRack(t, table, 2, 1, false)
	resC, err := ResumeTraceCfg(rC, jobs, NewRoundRobin(), tc, c.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripMetrics(resA), stripMetrics(resC)) {
		t.Fatalf("resume-from-step-0 differs from the plain run")
	}
}

// TestCheckpointConfigValidation: the satellite rule — non-positive (or
// non-finite) CheckpointEvery is rejected, as is a cadence with no sink
// and a sink with no cadence.
func TestCheckpointConfigValidation(t *testing.T) {
	table := resumeRackTable(t)
	r := resumeRack(t, table, 2, 1, false)
	sink := func(Checkpoint) error { return nil }
	for _, bad := range []TraceConfig{
		{Dt: 1, Horizon: 10, CheckpointEvery: 0, CheckpointSink: sink},
		{Dt: 1, Horizon: 10, CheckpointEvery: -5, CheckpointSink: sink},
		{Dt: 1, Horizon: 10, CheckpointEvery: math.NaN(), CheckpointSink: sink},
		{Dt: 1, Horizon: 10, CheckpointEvery: math.Inf(1), CheckpointSink: sink},
		{Dt: 1, Horizon: 10, CheckpointEvery: 5}, // cadence, no sink
	} {
		if _, err := RunTraceCfg(r, nil, NewRoundRobin(), bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

// TestResumeRejectsMismatchedConfig: the checkpoint's cross-checks catch
// a resume under the wrong dt/kernel/policy/trace.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	table := resumeRackTable(t)
	jobs := faultTraceJobs(t, 200)
	tc := TraceConfig{Dt: 1, Horizon: 300, SampleEvery: 15}
	r := resumeRack(t, table, 2, 1, false)
	ck := interruptAt(t, r, jobs, NewRoundRobin(), tc, 100)

	cases := []struct {
		name string
		mut  func(*TraceConfig, *[]Job, *Policy)
	}{
		{"dt", func(tc *TraceConfig, _ *[]Job, _ *Policy) { tc.Dt = 2 }},
		{"horizon", func(tc *TraceConfig, _ *[]Job, _ *Policy) { tc.Horizon = 600 }},
		{"kernel", func(tc *TraceConfig, _ *[]Job, _ *Policy) { tc.EventStepping = true }},
		{"sample", func(tc *TraceConfig, _ *[]Job, _ *Policy) { tc.SampleEvery = 30 }},
		{"policy", func(_ *TraceConfig, _ *[]Job, p *Policy) { *p = NewCoolestFirst() }},
		{"jobs", func(_ *TraceConfig, j *[]Job, _ *Policy) { *j = (*j)[:len(*j)-1] }},
	}
	for _, cse := range cases {
		tc2, jobs2 := tc, jobs
		var p Policy = NewRoundRobin()
		cse.mut(&tc2, &jobs2, &p)
		r2 := resumeRack(t, table, 2, 1, false)
		if _, err := ResumeTraceCfg(r2, jobs2, p, tc2, ck); err == nil {
			t.Errorf("%s mismatch accepted on resume", cse.name)
		}
	}

	// Wrong rack shape.
	r3 := resumeRack(t, table, 3, 1, false)
	if _, err := ResumeTraceCfg(r3, jobs, NewRoundRobin(), tc, ck); err == nil {
		t.Error("rack-shape mismatch accepted on resume")
	}
}

// TestDivergenceGuard: non-finite physics aborts the run with *Diverged
// and a diagnostic snapshot instead of smearing NaNs to the horizon.
func TestDivergenceGuard(t *testing.T) {
	table := resumeRackTable(t)
	for _, event := range []bool{false, true} {
		r := resumeRack(t, table, 2, 1, false)
		r.AddAmbientOffset(units.Celsius(math.NaN()))
		_, err := RunTraceCfg(r, nil, NewRoundRobin(), TraceConfig{
			Dt: 1, Horizon: 300, EventStepping: event,
		})
		var d *Diverged
		if !errors.As(err, &d) {
			t.Fatalf("event=%v: got %v, want *Diverged", event, err)
		}
		if d.Step <= 0 || d.Step > 300 {
			t.Fatalf("event=%v: divergence at implausible step %d", event, d.Step)
		}
	}
}

// TestCheckpointOverheadDisabled: with no Ctx and no sink, the run-control
// path must not charge the hot loop — the boundary hook is skipped
// entirely and results stay bit-identical to a run built before the
// feature existed (the golden tables enforce the latter; here we pin the
// flag plumbing).
func TestCheckpointOverheadDisabled(t *testing.T) {
	table := resumeRackTable(t)
	jobs := faultTraceJobs(t, 200)
	r1 := resumeRack(t, table, 2, 1, false)
	res1, err := RunTraceCfg(r1, jobs, NewRoundRobin(), TraceConfig{Dt: 1, Horizon: 300})
	if err != nil {
		t.Fatal(err)
	}
	// A cadence sink that never fires within the horizon: same result.
	r2 := resumeRack(t, table, 2, 1, false)
	res2, err := RunTraceCfg(r2, jobs, NewRoundRobin(), TraceConfig{
		Dt: 1, Horizon: 300, CheckpointEvery: 1e9,
		CheckpointSink: func(Checkpoint) error { t.Fatal("sink fired"); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("checkpoint plumbing perturbed the run:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(r1.Telemetry(), r2.Telemetry()) {
		t.Fatal("checkpoint plumbing perturbed telemetry")
	}
}
