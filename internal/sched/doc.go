// Package sched puts a job dispatcher on top of internal/rack: jobs with
// an arrival time, a duration and a CPU demand are placed onto servers by
// a pluggable placement policy, and the rack physics decides what the
// placement costs in energy, temperature and wall power.
//
// The paper's server-level result — leakage- and fan-aware control beats
// reactive and static policies — only pays off at scale when the
// dispatcher also knows which machine is coolest and cheapest to heat up.
// The six shipped policies span that design space:
//
//   - round-robin and least-utilized: thermally blind baselines;
//   - coolest-first: the reactive thermal heuristic;
//   - leakage-aware: reuses the paper's own machinery (internal/lut over
//     server.SteadyTemp) to place each job where the predicted marginal
//     fan+leakage power is lowest;
//   - cap-aware: the delivery-chain refinement — the same marginal cost
//     lifted through each slot's PSU efficiency curve, so jobs go where
//     the predicted marginal wall (AC) power is lowest;
//   - pue-aware: the facility-scope refinement — cost tables rebuilt at
//     the ambients the CRAC setpoint actually supplies (a facility-blind
//     table goes stale when the operator moves the cold aisle), and the
//     wall marginal amplified by the marginal CRAC/chiller power that
//     removes it as heat (internal/cooling).
//
// # Determinism contract
//
// Scheduling decisions run serially on the dispatcher goroutine; only the
// rack step underneath fans out (under the repository-wide "job i writes
// only slot i; reductions serial in index order" contract documented in
// internal/par). Policies must be deterministic, breaking ties by the
// lowest server index; RunTrace places strictly FIFO, so the queue head
// blocks until it fits. Results are therefore byte-identical for any
// worker count.
//
// # Wall-power capping
//
// TraceConfig.WallCapW enforces a rack-level wall budget: before charging
// a placement, the runner predicts the post-placement wall draw —
// rack.WallPowerWithAll over the utilization-driven DC increments of the
// candidate job and every placement already admitted in the same step —
// and defers the head — one deferral per step, retried after completions
// free power — whenever the prediction strictly exceeds the cap. A cap
// below the rack's idle draw therefore starves politely: nothing places,
// the queue holds, and the run still terminates at its horizon.
//
// The fast admission estimate counts only the utilization-driven DC
// increment, so fan and leakage transients settling after admission can
// still push the wall past the cap. TraceConfig.CapMarginal supplies
// per-slot steady-state cost tables and switches admission to the
// conservative estimate — the settled fan+leak marginal charged up front,
// clamped at zero — which by construction defers no later (and possibly
// earlier) than the fast one.
//
// # Event-driven macro-stepping
//
// TraceConfig.EventStepping replaces the fixed-dt grind with an
// event-driven kernel. The event taxonomy: job arrivals, job completions,
// backlog retries (a blocked FIFO head is re-attempted every grid step,
// against freshly evolved telemetry), controller wake-ups (the
// control.HorizonPromiser contract: hold-off expiries and poll outcomes
// bound when a fan decision can next happen), and optional fixed-cadence
// telemetry samples (TraceConfig.SampleEvery). The kernel visits exactly
// the grid steps at which the fixed-dt loop could act — decisions run
// through literally the same code at the same instants, so placements,
// deferral counts and queue statistics are identical — and advances the
// rack across each quiet gap in one closed-form macro window
// (rack.Advance over server.MacroWindow over thermal.StepLinearizedN).
// Energies agree with the fixed-dt reference to ≤1e-6 relative (the
// leakage-linearization drift cap, server.Config.MacroDriftTolC, is the
// knob), and wall-clock scales with the number of events instead of
// horizon/dt — ~27× fewer rack advances on the default Poisson trace.
//
// Fixed-dt remains mandatory — the kernel pins itself to single-step
// windows — while any fan controller cannot promise a quiet horizon
// (control.HorizonPromiser), while fans are slewing, or near the
// thermal-trip threshold. A non-empty backlog pins the kernel too, with
// one carve-out: when the policy declares its refusals load-only
// (LoadOnlyRefuser — refusing depends only on what placements would
// observe, and placements only change at arrivals and completions) and no
// wall cap is set (cap admission watches evolving fan/leak transients),
// the head retry is provably futile between events and the kernel
// macro-steps completion-to-completion over the blocked head. Round-robin
// and least-utilized opt in; the thermally-informed policies stay
// conservative and keep the pin. Reactive temperature-thresholding
// controllers are no longer an automatic pin either: BangBang promises
// its own decision cadence (ticks strictly before the next due instant
// are non-mutating no-ops), and its control.BandPromiser band lets the
// kernel extend that promise across every future decision instant whose
// predicted observation provably stays inside [TLow, THigh]
// (server.BandDecisionHorizon). EventStepping=false (the default) is the
// bit-exact reference path.
//
// # FIFO backfill
//
// TraceConfig.Backfill relaxes strict FIFO when the queue head blocks:
// the remaining queued jobs are tried once each, in arrival order,
// against the same invalid/overload/health checks and the same pendingDC
// cap admission the head failed, and placed where accepted
// (Result.Backfills counts them; sched.backfills mirrors it). The head
// keeps strict priority — backfilled placements only consume capacity,
// which can never un-refuse the head, because refusal is monotone in load
// for every shipped policy — but arrival fairness weakens to
// head-priority-only: under sustained overload a small job behind a large
// blocked head may run first indefinitely often. Cap-blocked backfill
// candidates are skipped without charging a Deferral (that meter stays
// head-only). Backfill decisions happen at the same decision steps as
// head retries, so the load-only macro carve-out above applies unchanged
// and both kernels agree job for job.
//
// # Faults and graceful degradation
//
// TraceConfig.Faults attaches a deterministic internal/fault schedule.
// Every event edge (inject, and the clear of a windowed event) is pinned
// up front to the first grid step at or after its time — the same
// grid-arithmetic rule in both stepping modes, so fault runs stay
// byte-identical between fixed-dt and the event kernel and across worker
// counts. Within a step the order is fixed: completions, then fault edges
// (clears before applies when they share a step), then the kill scan, then
// arrivals and placement — a job ending exactly at a fault instant
// completes, and an apply+clear pair collapsing onto one step is dropped
// as a no-op.
//
// The kill scan removes every running job whose slot is no longer
// rack.Healthy: by default the job rejoins the backlog HEAD (ahead of
// waiting arrivals — it has the oldest claim), restarts from scratch with
// its wait clock reset, and its destroyed progress is charged to
// Result.LostJobSeconds; TraceConfig.DropOnFault abandons it instead,
// charging its full duration. Policies see slot health in ServerView and
// must not place on unhealthy slots — the runner enforces this with a hard
// error. FIFO head-blocking is unchanged, so degraded runs remain
// starvation-free: a requeued head blocks until some healthy slot fits it,
// and the run always terminates at its horizon.
//
// Under event stepping, fault edges are wake events bounding every quiet
// window, windowed faults pin their targets to fixed-dt for the window's
// duration, and the kernel degrades to single-step windows while any live
// server sits inside the trip-guard band (rack.TripRisk), so a natural
// trip — and the kills it implies — is observed on the step it latches.
// One caveat mirrors the controller PollPeriod contract: a natural trip
// latching strictly inside a granted macro window (possible only when no
// fault schedule is attached) defers its kill scan to the window's end.
package sched
