package loadgen

import (
	"testing"

	"repro/internal/units"
)

// FuzzPoissonTrace drives the trace synthesizer with arbitrary
// configurations and checks the contract both ways: invalid configs must
// be rejected by Validate (never hang or panic the generator), and every
// accepted config must yield a trace that is sorted, inside the horizon,
// positive-duration, demand-closed and seed-deterministic. The seed corpus
// under testdata/fuzz pins the shipped experiment shapes plus the
// non-finite edge cases the validator hardening exists for; CI runs a
// short -fuzz smoke on top.
func FuzzPoissonTrace(f *testing.F) {
	f.Add(int64(42), 3600.0, 0.02, 300.0, 2, 20.0, 60.0) // the rack experiment shape
	f.Add(int64(1), 900.0, 0.5, 60.0, 1, 40.0, 0.0)      // single demand level
	f.Add(int64(7), 1200.0, 0.01, 240.0, 0, 20.0, 40.0)  // no demands: must be rejected
	f.Add(int64(9), -1.0, 0.02, 300.0, 2, 20.0, 60.0)    // negative horizon
	f.Add(int64(3), 3600.0, 0.02, 300.0, 2, 150.0, 60.0) // demand out of range
	f.Fuzz(func(t *testing.T, seed int64, horizon, rate, meanDur float64, nDemands int, d0, d1 float64) {
		cfg := PoissonTraceConfig{Seed: seed, Horizon: horizon, Rate: rate, MeanDuration: meanDur}
		switch {
		case nDemands <= 0:
		case nDemands == 1:
			cfg.Demands = []units.Percent{units.Percent(d0)}
		default:
			cfg.Demands = []units.Percent{units.Percent(d0), units.Percent(d1)}
		}
		if cfg.Validate() == nil && rate*horizon > 2e5 {
			return // valid but enormous: don't OOM the fuzzer on job count
		}
		jobs, err := PoissonTrace(cfg)
		if verr := cfg.Validate(); (verr == nil) != (err == nil) {
			t.Fatalf("Validate (%v) and PoissonTrace (%v) disagree for %+v", verr, err, cfg)
		}
		if err != nil {
			return
		}
		inSet := func(d units.Percent) bool {
			for _, want := range cfg.Demands {
				if d == want {
					return true
				}
			}
			return false
		}
		for i, j := range jobs {
			if !(j.Arrival >= 0 && j.Arrival < cfg.Horizon) {
				t.Fatalf("job %d arrival %g outside [0, %g)", i, j.Arrival, cfg.Horizon)
			}
			if i > 0 && j.Arrival < jobs[i-1].Arrival {
				t.Fatalf("job %d arrival %g before predecessor %g", i, j.Arrival, jobs[i-1].Arrival)
			}
			if !(j.Duration > 0) {
				t.Fatalf("job %d non-positive duration %g", i, j.Duration)
			}
			if !inSet(j.Demand) {
				t.Fatalf("job %d demand %v not drawn from %v", i, j.Demand, cfg.Demands)
			}
		}
		// Same seed, same trace: the determinism the golden tables rest on.
		again, err := PoissonTrace(cfg)
		if err != nil || len(again) != len(jobs) {
			t.Fatalf("replay differs: %d jobs then %d (err %v)", len(jobs), len(again), err)
		}
		for i := range jobs {
			if jobs[i] != again[i] {
				t.Fatalf("replay differs at job %d: %+v vs %+v", i, jobs[i], again[i])
			}
		}
	})
}
