package loadgen

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil profile should error")
	}
	if _, err := New(Constant{Level: 50}, WithPWMPeriod(0)); err == nil {
		t.Error("zero PWM period should error")
	}
}

func TestPWMBinaryOutput(t *testing.T) {
	g, err := New(Constant{Level: 40}, WithPWMPeriod(10))
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0.0; ti < 100; ti += 0.5 {
		l := g.Load(ti)
		if l != 0 && l != 100 {
			t.Fatalf("PWM output at %g = %v, want 0 or 100", ti, l)
		}
	}
}

func TestPWMDutyCycleAverage(t *testing.T) {
	for _, target := range []units.Percent{0, 10, 25, 40, 50, 60, 75, 90, 100} {
		g, err := New(Constant{Level: target}, WithPWMPeriod(10))
		if err != nil {
			t.Fatal(err)
		}
		avg := g.AverageLoad(0, 1000, 0.1)
		if math.Abs(float64(avg-target)) > 1.0 {
			t.Errorf("PWM average for %v = %v", target, avg)
		}
	}
}

func TestPWMDutyCycleProperty(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		target := units.Percent(math.Mod(math.Abs(raw), 100))
		g, err := New(Constant{Level: target}, WithPWMPeriod(5))
		if err != nil {
			return false
		}
		avg := g.AverageLoad(0, 500, 0.05)
		return math.Abs(float64(avg-target)) < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutPWM(t *testing.T) {
	g, err := New(Constant{Level: 42}, WithoutPWM())
	if err != nil {
		t.Fatal(err)
	}
	if g.Load(12.3) != 42 {
		t.Fatalf("direct load = %v", g.Load(12.3))
	}
}

func TestAverageLoadDegenerate(t *testing.T) {
	g, _ := New(Constant{Level: 50})
	if g.AverageLoad(10, 10, 1) != 0 || g.AverageLoad(10, 5, 1) != 0 || g.AverageLoad(0, 10, 0) != 0 {
		t.Fatal("degenerate AverageLoad should be 0")
	}
}

func TestConstantProfile(t *testing.T) {
	c := Constant{Level: 150, Dur: 60}
	if c.Target(0) != 100 {
		t.Fatal("constant should clamp")
	}
	if c.Duration() != 60 {
		t.Fatal("duration wrong")
	}
}

func TestStepsProfile(t *testing.T) {
	s, err := NewSteps(300,
		Step{Start: 0, Level: 10},
		Step{Start: 100, Level: 50},
		Step{Start: 200, Level: 90},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want units.Percent
	}{
		{0, 10}, {50, 10}, {100, 50}, {150, 50}, {200, 90}, {299, 90},
	}
	for _, c := range cases {
		if got := s.Target(c.t); got != c.want {
			t.Errorf("Target(%g) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.Duration() != 300 {
		t.Fatal("duration wrong")
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := NewSteps(100); err == nil {
		t.Error("no steps should error")
	}
	if _, err := NewSteps(0, Step{0, 10}); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := NewSteps(100, Step{0, 1}, Step{0, 2}); err == nil {
		t.Error("non-increasing starts should error")
	}
	if _, err := NewSteps(100, Step{5, 1}); err == nil {
		t.Error("first step after 0 should error")
	}
}

func TestRampProfile(t *testing.T) {
	r, err := NewRamp([]float64{0, 100, 200}, []units.Percent{0, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-5, 0}, {0, 0}, {50, 50}, {100, 100}, {150, 50}, {200, 0}, {999, 0},
	}
	for _, c := range cases {
		if got := float64(r.Target(c.t)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ramp Target(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if r.Duration() != 200 {
		t.Fatal("ramp duration wrong")
	}
}

func TestRampValidation(t *testing.T) {
	if _, err := NewRamp([]float64{0}, []units.Percent{0}); err == nil {
		t.Error("single point should error")
	}
	if _, err := NewRamp([]float64{0, 0}, []units.Percent{0, 1}); err == nil {
		t.Error("non-increasing times should error")
	}
	if _, err := NewRamp([]float64{0, 1}, []units.Percent{0}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSquareProfile(t *testing.T) {
	s := Square{High: 90, Low: 10, HalfPeriod: 300, Dur: 1200}
	if s.Target(0) != 90 || s.Target(299) != 90 {
		t.Fatal("first half wrong")
	}
	if s.Target(300) != 10 || s.Target(599) != 10 {
		t.Fatal("second half wrong")
	}
	if s.Target(600) != 90 {
		t.Fatal("third half wrong")
	}
	degenerate := Square{High: 70, Low: 10, HalfPeriod: 0}
	if degenerate.Target(123) != 70 {
		t.Fatal("degenerate square should hold High")
	}
}

func TestTraceProfile(t *testing.T) {
	tr, err := NewTrace(10, []units.Percent{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Target(-1) != 10 {
		t.Fatal("pre-start should hold first sample")
	}
	if tr.Target(0) != 10 || tr.Target(9.9) != 10 {
		t.Fatal("first bucket wrong")
	}
	if tr.Target(10) != 20 || tr.Target(25) != 30 {
		t.Fatal("later buckets wrong")
	}
	if tr.Target(1e9) != 30 {
		t.Fatal("past-end should hold last sample")
	}
	if tr.Duration() != 30 {
		t.Fatal("duration wrong")
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(0, []units.Percent{1}); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := NewTrace(1, nil); err == nil {
		t.Error("empty trace should error")
	}
}

func TestGeneratorPassThrough(t *testing.T) {
	p := Square{High: 80, Low: 20, HalfPeriod: 10, Dur: 100}
	g, _ := New(p)
	if g.Target(5) != 80 || g.Target(15) != 20 {
		t.Fatal("Target pass-through wrong")
	}
	if g.Duration() != 100 {
		t.Fatal("Duration pass-through wrong")
	}
}

// TestPoissonTrace covers the rack job-trace generator: determinism,
// arrival ordering, horizon bounds and validation.
func TestPoissonTrace(t *testing.T) {
	cfg := PoissonTraceConfig{Seed: 42, Horizon: 3600, Rate: 0.02, MeanDuration: 300, Demands: []units.Percent{20, 40, 60}}
	a, err := PoissonTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical traces")
	}
	// Expect roughly Rate·Horizon arrivals (72); allow wide slack.
	if len(a) < 30 || len(a) > 150 {
		t.Fatalf("implausible job count %d for rate %g over %g s", len(a), cfg.Rate, cfg.Horizon)
	}
	for i, j := range a {
		if j.Arrival < 0 || j.Arrival >= cfg.Horizon {
			t.Fatalf("job %d arrival %g outside [0,%g)", i, j.Arrival, cfg.Horizon)
		}
		if i > 0 && j.Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals unsorted at %d", i)
		}
		if j.Duration < 0 || j.Demand <= 0 || j.Demand > 100 {
			t.Fatalf("job %d implausible: %+v", i, j)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 7
	c, err := PoissonTrace(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds must give different traces")
	}

	for _, bad := range []PoissonTraceConfig{
		{Seed: 1, Horizon: 0, Rate: 1, MeanDuration: 1, Demands: []units.Percent{50}},
		{Seed: 1, Horizon: 10, Rate: 0, MeanDuration: 1, Demands: []units.Percent{50}},
		{Seed: 1, Horizon: 10, Rate: 1, MeanDuration: 0, Demands: []units.Percent{50}},
		{Seed: 1, Horizon: 10, Rate: 1, MeanDuration: 1},
		{Seed: 1, Horizon: 10, Rate: 1, MeanDuration: 1, Demands: []units.Percent{150}},
	} {
		if _, err := PoissonTrace(bad); err == nil {
			t.Fatalf("config %+v must be rejected", bad)
		}
	}
}
