package loadgen

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/units"
)

// JobSpec is one synthetic job of a rack-level trace: it arrives, occupies
// Demand percent of one server's CPU for Duration seconds, and leaves.
// This extends LoadGen's single-machine PWM synthesis to the unit a
// dispatcher schedules.
type JobSpec struct {
	Arrival  float64       // seconds from trace start
	Duration float64       // service time, seconds
	Demand   units.Percent // CPU demand on whichever server runs it
}

// PoissonTraceConfig parameterizes PoissonTrace.
type PoissonTraceConfig struct {
	Seed         int64
	Horizon      float64         // arrivals are generated in [0, Horizon)
	Rate         float64         // mean arrivals per second (Poisson process)
	MeanDuration float64         // exponential service-time mean, seconds
	Demands      []units.Percent // per-job demand, drawn uniformly
}

// Validate reports configuration errors. Non-finite parameters are
// rejected explicitly: an infinite rate would stall the arrival loop at
// zero inter-arrival gaps, and a NaN would slip through any ordered
// comparison below.
func (c PoissonTraceConfig) Validate() error {
	for _, v := range []float64{c.Horizon, c.Rate, c.MeanDuration} {
		if !(v > 0) || math.IsInf(v, 1) {
			return fmt.Errorf("loadgen: poisson trace needs positive finite horizon/rate/duration, got %+v", c)
		}
	}
	if len(c.Demands) == 0 {
		return fmt.Errorf("loadgen: poisson trace needs at least one demand level")
	}
	for _, d := range c.Demands {
		if !(d > 0) || d > 100 {
			return fmt.Errorf("loadgen: demand %v outside (0,100]", d)
		}
	}
	return nil
}

// PoissonTrace synthesizes a job trace with exponential inter-arrival
// times (a Poisson arrival process, as in the Test-4 shell workload),
// exponential service times and uniformly chosen demand levels. The trace
// is fully determined by the seed, sorted by arrival time by construction.
func PoissonTrace(cfg PoissonTraceConfig) ([]JobSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	var jobs []JobSpec
	for t := rng.Exponential(1 / cfg.Rate); t < cfg.Horizon; t += rng.Exponential(1 / cfg.Rate) {
		jobs = append(jobs, JobSpec{
			Arrival:  t,
			Duration: rng.Exponential(cfg.MeanDuration),
			Demand:   cfg.Demands[rng.IntN(len(cfg.Demands))],
		})
	}
	return jobs, nil
}
