// Package loadgen reimplements the paper's LoadGen: a dynamic load-synthesis
// tool that reaches any target CPU utilization by duty-cycling between 100%
// and idle at fine granularity (PWM), spreading the load evenly across all
// cores.
//
// A Generator combines a Profile — the target utilization as a function of
// time — with the PWM mechanism. The PWM is what produces the thermal
// oscillations visible in Fig. 1(b) of the paper.
package loadgen

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Profile yields the target utilization at simulation time t (seconds).
type Profile interface {
	// Target returns the desired utilization at time t.
	Target(t float64) units.Percent
	// Duration returns the length of the profile in seconds (0 = unbounded).
	Duration() float64
}

// Generator drives a load sink (the simulated server) with PWM so that the
// average utilization over each PWM period equals the profile target.
type Generator struct {
	profile Profile
	period  float64 // PWM period, seconds
	pwm     bool    // false = apply target directly (ideal averaging)
}

// Option configures a Generator.
type Option func(*Generator)

// WithPWMPeriod sets the duty-cycle period (default 30 s, producing the
// paper's visible thermal oscillations).
func WithPWMPeriod(seconds float64) Option {
	return func(g *Generator) { g.period = seconds }
}

// WithoutPWM applies the target utilization directly instead of
// duty-cycling; useful for controller tests that do not care about
// oscillation.
func WithoutPWM() Option {
	return func(g *Generator) { g.pwm = false }
}

// New builds a Generator for a profile.
func New(p Profile, opts ...Option) (*Generator, error) {
	if p == nil {
		return nil, fmt.Errorf("loadgen: nil profile")
	}
	g := &Generator{profile: p, period: 30, pwm: true}
	for _, o := range opts {
		o(g)
	}
	if g.period <= 0 {
		return nil, fmt.Errorf("loadgen: PWM period must be positive, got %g", g.period)
	}
	return g, nil
}

// Load returns the instantaneous utilization the generator applies at time
// t. With PWM enabled the machine is either flat out (100%) or idle within
// each period; the duty fraction equals the profile target.
func (g *Generator) Load(t float64) units.Percent {
	target := g.profile.Target(t).Clamp()
	if !g.pwm {
		return target
	}
	duty := target.Fraction()
	phase := math.Mod(t, g.period) / g.period
	if phase < duty {
		return 100
	}
	return 0
}

// Target exposes the underlying profile target at time t.
func (g *Generator) Target(t float64) units.Percent { return g.profile.Target(t) }

// Duration returns the profile duration.
func (g *Generator) Duration() float64 { return g.profile.Duration() }

// AverageLoad integrates the generated load over [t0, t1] with the given
// sampling step and returns the mean utilization — a check that PWM hits its
// target.
func (g *Generator) AverageLoad(t0, t1, dt float64) units.Percent {
	if t1 <= t0 || dt <= 0 {
		return 0
	}
	var sum float64
	n := 0
	for t := t0; t < t1; t += dt {
		sum += float64(g.Load(t))
		n++
	}
	return units.Percent(sum / float64(n))
}

// ---------------------------------------------------------------------------
// Profiles

// Constant holds a fixed utilization forever (or for Dur seconds).
type Constant struct {
	Level units.Percent
	Dur   float64
}

// Target implements Profile.
func (c Constant) Target(float64) units.Percent { return c.Level.Clamp() }

// Duration implements Profile.
func (c Constant) Duration() float64 { return c.Dur }

// Step is one segment of a piecewise-constant profile.
type Step struct {
	Start float64 // seconds from profile start
	Level units.Percent
}

// Steps is a piecewise-constant profile built from ordered segments.
type Steps struct {
	steps []Step
	dur   float64
}

// NewSteps validates and builds a step profile lasting dur seconds. Steps
// must be ordered by start time, beginning at or before 0.
func NewSteps(dur float64, steps ...Step) (*Steps, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("loadgen: step profile needs at least one step")
	}
	if dur <= 0 {
		return nil, fmt.Errorf("loadgen: step profile duration must be positive, got %g", dur)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Start <= steps[i-1].Start {
			return nil, fmt.Errorf("loadgen: steps not strictly ordered at %d", i)
		}
	}
	if steps[0].Start > 0 {
		return nil, fmt.Errorf("loadgen: first step must start at t<=0, got %g", steps[0].Start)
	}
	return &Steps{steps: steps, dur: dur}, nil
}

// Target implements Profile.
func (s *Steps) Target(t float64) units.Percent {
	level := s.steps[0].Level
	for _, st := range s.steps {
		if st.Start <= t {
			level = st.Level
		} else {
			break
		}
	}
	return level.Clamp()
}

// Duration implements Profile.
func (s *Steps) Duration() float64 { return s.dur }

// Ramp linearly interpolates utilization between breakpoints.
type Ramp struct {
	times  []float64
	levels []float64
	dur    float64
}

// NewRamp builds a piecewise-linear profile through (times[i], levels[i]).
func NewRamp(times []float64, levels []units.Percent) (*Ramp, error) {
	if len(times) != len(levels) || len(times) < 2 {
		return nil, fmt.Errorf("loadgen: ramp needs >=2 matching breakpoints")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("loadgen: ramp times not increasing at %d", i)
		}
	}
	r := &Ramp{dur: times[len(times)-1]}
	for i := range times {
		r.times = append(r.times, times[i])
		r.levels = append(r.levels, float64(levels[i].Clamp()))
	}
	return r, nil
}

// Target implements Profile.
func (r *Ramp) Target(t float64) units.Percent {
	if t <= r.times[0] {
		return units.Percent(r.levels[0])
	}
	if t >= r.times[len(r.times)-1] {
		return units.Percent(r.levels[len(r.levels)-1])
	}
	for i := 1; i < len(r.times); i++ {
		if t <= r.times[i] {
			f := (t - r.times[i-1]) / (r.times[i] - r.times[i-1])
			return units.Percent(r.levels[i-1] + f*(r.levels[i]-r.levels[i-1]))
		}
	}
	return units.Percent(r.levels[len(r.levels)-1])
}

// Duration implements Profile.
func (r *Ramp) Duration() float64 { return r.dur }

// Square alternates between two levels with the given half-period.
type Square struct {
	High, Low  units.Percent
	HalfPeriod float64
	Dur        float64
}

// Target implements Profile.
func (s Square) Target(t float64) units.Percent {
	if s.HalfPeriod <= 0 {
		return s.High.Clamp()
	}
	if int(math.Floor(t/s.HalfPeriod))%2 == 0 {
		return s.High.Clamp()
	}
	return s.Low.Clamp()
}

// Duration implements Profile.
func (s Square) Duration() float64 { return s.Dur }

// Trace plays back an explicit utilization trace sampled at fixed intervals.
type Trace struct {
	dt     float64
	levels []float64
}

// NewTrace builds a trace profile with samples dt seconds apart.
func NewTrace(dt float64, levels []units.Percent) (*Trace, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("loadgen: trace dt must be positive")
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	tr := &Trace{dt: dt}
	for _, l := range levels {
		tr.levels = append(tr.levels, float64(l.Clamp()))
	}
	return tr, nil
}

// Target implements Profile.
func (tr *Trace) Target(t float64) units.Percent {
	if t < 0 {
		return units.Percent(tr.levels[0])
	}
	i := int(t / tr.dt)
	if i >= len(tr.levels) {
		i = len(tr.levels) - 1
	}
	return units.Percent(tr.levels[i])
}

// Duration implements Profile.
func (tr *Trace) Duration() float64 { return float64(len(tr.levels)) * tr.dt }
