package leakctl_test

import (
	"fmt"

	leakctl "repro"
)

// ExampleNewRoom builds a three-rack room behind one shared CRAC bank with
// the default neighbor recirculation coupling, loads the middle rack, and
// shows the room-level picture: the shared facility costs energy (PUE > 1),
// room heat is conserved, and the middle of the row — coupled to a
// neighbor on each side — sits in more recirculated exhaust than the row
// ends, the spatial gradient the recirculation-aware chooser prices.
func ExampleNewRoom() {
	mkRack := func(seed int64) leakctl.RackConfig {
		specs := make([]leakctl.RackServerSpec, 2)
		for i := range specs {
			cfg := leakctl.T3Config()
			cfg.NoiseSeed = seed + int64(i)
			specs[i] = leakctl.RackServerSpec{Config: cfg}
		}
		return leakctl.RackConfig{Servers: specs}
	}

	fac := leakctl.DefaultFacility(18)
	rm, err := leakctl.NewRoom(leakctl.RoomConfig{
		Racks: []leakctl.RoomRackSpec{
			{Name: "row-a", Config: mkRack(1)},
			{Name: "row-b", Config: mkRack(100)},
			{Name: "row-c", Config: mkRack(200)},
		},
		Recirc:   leakctl.NeighborRecircMatrix(3),
		Facility: &fac,
	})
	if err != nil {
		panic(err)
	}

	// Only the middle rack works; its neighbors idle.
	for i := 0; i < rm.Rack(1).NumServers(); i++ {
		rm.Rack(1).SetLoad(i, 90)
	}
	for s := 0; s < 600; s++ {
		rm.Step(1)
	}

	tel := rm.Telemetry()
	mid, end := rm.RecircOffsetC(1), rm.RecircOffsetC(0)
	fmt.Printf("racks: %d, servers: %d\n", tel.Racks, tel.Servers)
	fmt.Printf("cooling costs energy: %v\n", tel.CoolingEnergyKWh > 0 && tel.PUE > 1)
	fmt.Printf("heat conserved: %v\n", tel.RoomHeatKWh > 0)
	fmt.Printf("middle of the row runs hottest: %v\n", mid > end && end > 0)
	// Output:
	// racks: 3, servers: 6
	// cooling costs energy: true
	// heat conserved: true
	// middle of the row runs hottest: true
}
