package leakctl

import (
	"testing"
)

func TestFacadeDVFSTable(t *testing.T) {
	cfg := T3Config()
	table, err := BuildDVFSTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) == 0 {
		t.Fatal("empty coordinated table")
	}
	// The coordinated table is at least as good as the fan-only table at
	// every utilization: the (P0, fan) choice is always in its search
	// space, so CPUFanPower ≤ fan-only leak+fan + active at P0.
	fanTable, err := BuildLUT(cfg, DefaultLUTBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range table.Entries {
		f := fanTable.Entries[i]
		if e.Util != f.Util {
			t.Fatalf("grid mismatch at %d", i)
		}
		fanOnlyTotal := float64(f.FanLeakPower) + float64(cfg.Power.Active.Power(f.Util))
		if float64(e.CPUFanPower) > fanOnlyTotal+1e-9 {
			t.Fatalf("U=%v: coordinated %.2f W worse than fan-only %.2f W",
				e.Util, float64(e.CPUFanPower), fanOnlyTotal)
		}
	}
}

func TestFacadeRunCoordinated(t *testing.T) {
	cfg := T3Config()
	table, err := BuildDVFSTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tests, err := TestWorkloads(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCoordinated(cfg, table, tests[0].Profile)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyKWh <= 0 || res.Throttled {
		t.Fatalf("coordinated run: %+v", res)
	}
	// Test-1 ramps to 100%: the policy must return to P0 for the peak.
	if res.MaxTempC > 76 {
		t.Fatalf("coordinated max temp %g", res.MaxTempC)
	}
}

func TestFacadeReliability(t *testing.T) {
	// Oscillating trace accumulates more damage than a steady one.
	steady := make([]float64, 200)
	osc := make([]float64, 200)
	for i := range steady {
		steady[i] = 65
		if i%20 < 10 {
			osc[i] = 55
		} else {
			osc[i] = 75
		}
	}
	sRep, err := AnalyzeReliability(steady)
	if err != nil {
		t.Fatal(err)
	}
	oRep, err := AnalyzeReliability(osc)
	if err != nil {
		t.Fatal(err)
	}
	if oRep.CyclingDamage <= sRep.CyclingDamage {
		t.Fatalf("oscillating damage %g should exceed steady %g",
			oRep.CyclingDamage, sRep.CyclingDamage)
	}
}

func TestFig3ReliabilityOrdering(t *testing.T) {
	// The quantified version of the paper's reliability argument: the
	// bang-bang controller's thermal cycles cost more fatigue damage than
	// the LUT's steady operation.
	series, err := Fig3(T3Config(), 42, DefaultEval())
	if err != nil {
		t.Fatal(err)
	}
	reports := map[string]ReliabilityReport{}
	for _, s := range series {
		rep, err := AnalyzeReliability(s.Y)
		if err != nil {
			t.Fatal(err)
		}
		reports[s.Name] = rep
	}
	if reports["Bang-bang"].CyclingDamage <= reports["LUT"].CyclingDamage {
		t.Fatalf("bang damage %g should exceed LUT %g",
			reports["Bang-bang"].CyclingDamage, reports["LUT"].CyclingDamage)
	}
	// All policies stay below the 55 °C-reference Arrhenius unity on the
	// cool Test-3 profile.
	for name, rep := range reports {
		if rep.Acceleration > 1.5 {
			t.Fatalf("%s acceleration %g implausibly high", name, rep.Acceleration)
		}
	}
}
