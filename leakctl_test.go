package leakctl

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeServerConstruction(t *testing.T) {
	srv, err := NewServer(T3Config())
	if err != nil {
		t.Fatal(err)
	}
	if srv.Utilization() != 0 {
		t.Fatal("new server not idle")
	}
	srv.SetLoad(75)
	srv.Step(10)
	if srv.Utilization() != 75 {
		t.Fatal("load not applied")
	}
}

func TestFacadeSteadyTemp(t *testing.T) {
	temp, err := SteadyTemp(T3Config(), 100, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if temp < 80 || temp > 90 {
		t.Fatalf("steady temp at 1800/100%% = %v, want ~85", temp)
	}
}

func TestFacadeLUTFlow(t *testing.T) {
	table, err := BuildLUT(T3Config(), DefaultLUTBuild())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewLUTController(table, DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	dec := ctrl.Tick(Observation{Now: 0, Utilization: 100, CurrentRPM: 3300})
	if !dec.Changed || dec.Target != 2400 {
		t.Fatalf("decision = %+v", dec)
	}
	// JSON round trip via the facade.
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLUT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(table.Entries) {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadeControllers(t *testing.T) {
	if NewDefaultController().Name() != "Default" {
		t.Fatal("default name")
	}
	bb, err := NewBangBangController(DefaultBangBang())
	if err != nil {
		t.Fatal(err)
	}
	if bb.Name() != "Bang-bang" {
		t.Fatal("bang name")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	tests, err := TestWorkloads(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 4 {
		t.Fatalf("workloads = %d", len(tests))
	}
}

func TestFacadeCharacterizeAndFit(t *testing.T) {
	sweep := DefaultSweep()
	sweep.Utils = []Percent{25, 75}
	sweep.RPMs = []RPM{1800, 4200}
	sweep.Warmup = 15 * 60
	sweep.Measure = 5 * 60
	sweep.PerPoll = false
	ds, err := Characterize(T3Config(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Points) != 4 {
		t.Fatalf("points = %d", len(ds.Points))
	}
	fit, err := FitLeakage(ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K1-0.4452) > 0.15 {
		t.Fatalf("k1 = %g", fit.K1)
	}
}

func TestFacadeFigures(t *testing.T) {
	curve, err := Fig2a(T3Config())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := curve.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	if opt.RPM != 2400 {
		t.Fatalf("Fig2a optimum = %v", opt.RPM)
	}
	curves, err := Fig2b(T3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("Fig2b curves = %d", len(curves))
	}
}

func TestFacadeRunControlled(t *testing.T) {
	tests, err := TestWorkloads(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunControlled(T3Config(), tests[0].Profile, NewDefaultController(), DefaultEval())
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyKWh <= 0 {
		t.Fatal("no energy recorded")
	}
	var sb strings.Builder
	if err := FormatTableI(&sb, []TableIRow{{TestID: 1, TestName: "t", Default: res, BangBang: res, LUT: res}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Energy(kWh)") {
		t.Fatal("format output missing header")
	}
}
