// Data-center row: an extension beyond the paper's single-server lab
// setup. A row of servers sits in an aisle with a thermal gradient (each
// rack position sees a different inlet temperature). Each server builds a
// LUT calibrated to ITS OWN ambient and we compare row-level energy
// against the stock fixed-speed policy — the deployment scenario the
// paper's conclusion points to.
package main

import (
	"fmt"
	"log"

	leakctl "repro"
)

func main() {
	// Inlet temperatures along the aisle: cold-aisle leakage and
	// recirculation make later rack positions warmer.
	ambients := []leakctl.Celsius{22, 24, 26, 28, 30, 32}
	ec := leakctl.DefaultEval()

	tests, err := leakctl.TestWorkloads(99)
	if err != nil {
		log.Fatal(err)
	}
	prof := tests[2].Profile // Test-3 random steps

	var rowDefault, rowLUT float64
	fmt.Printf("%-8s %-12s %-12s %-10s %-10s %-8s\n",
		"inlet", "default(kWh)", "LUT(kWh)", "saved(%)", "LUTmaxT", "LUTrpm")
	for _, amb := range ambients {
		cfg := leakctl.T3Config()
		cfg.Ambient = amb

		// Each position generates its own table: hotter inlets need
		// faster optimal fan speeds.
		table, err := leakctl.BuildLUT(cfg, leakctl.DefaultLUTBuild())
		if err != nil {
			log.Fatalf("inlet %v: %v", amb, err)
		}
		lutCtrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
		if err != nil {
			log.Fatal(err)
		}

		defRes, err := leakctl.RunControlled(cfg, prof, leakctl.NewDefaultController(), ec)
		if err != nil {
			log.Fatal(err)
		}
		lutRes, err := leakctl.RunControlled(cfg, prof, lutCtrl, ec)
		if err != nil {
			log.Fatal(err)
		}

		rowDefault += defRes.EnergyKWh
		rowLUT += lutRes.EnergyKWh
		fmt.Printf("%-8v %-12.4f %-12.4f %-10.2f %-10.1f %-8.0f\n",
			amb, defRes.EnergyKWh, lutRes.EnergyKWh,
			100*(defRes.EnergyKWh-lutRes.EnergyKWh)/defRes.EnergyKWh,
			lutRes.MaxTempC, lutRes.AvgRPM)
	}

	fmt.Printf("\nrow total: default %.3f kWh, LUT %.3f kWh → %.2f%% saved (%.1f Wh per 80 min)\n",
		rowDefault, rowLUT,
		100*(rowDefault-rowLUT)/rowDefault,
		(rowDefault-rowLUT)*1000)
	fmt.Println("hotter rack positions keep saving energy, but the margin narrows:")
	fmt.Println("the LUT must spend more fan power to honor the 75°C reliability cap,")
	fmt.Println("while still adapting per-position where the fixed default cannot.")
}
