// Telemetry dump: attach the CSTH-style harness to a simulated server,
// run a short load pattern under the LUT controller, and export the full
// sensor history (4 CPU temps, 32 DIMM temps, 64 per-core V/I channels,
// system and fan power) as CSV — the raw material of the paper's
// Section IV analysis.
//
// Usage: go run repro/examples/telemetrydump > telemetry.csv
package main

import (
	"fmt"
	"log"
	"os"

	leakctl "repro"

	"repro/internal/telemetry"
)

func main() {
	cfg := leakctl.T3Config()
	srv, err := leakctl.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's CSTH polls every 10 seconds.
	harness, err := telemetry.NewHarness(10, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AttachTelemetry(harness); err != nil {
		log.Fatal(err)
	}

	table, err := leakctl.BuildLUT(cfg, leakctl.DefaultLUTBuild())
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
	if err != nil {
		log.Fatal(err)
	}

	// 30 minutes: 10 idle, 15 at 90%, 5 idle.
	for now := 0.0; now < 30*60; now++ {
		switch {
		case now < 10*60:
			srv.SetLoad(0)
		case now < 25*60:
			srv.SetLoad(90)
		default:
			srv.SetLoad(0)
		}
		dec := ctrl.Tick(leakctl.Observation{
			Now:         srv.Now(),
			Utilization: srv.Utilization(),
			CurrentRPM:  srv.Fans().Target(),
		})
		if dec.Changed {
			srv.Fans().SetAll(dec.Target)
		}
		srv.Step(1)
		harness.Advance(srv.Now())
	}

	if err := harness.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dumped %d channels × %d polls\n",
		len(harness.Names()), 30*60/10+1)
}
