// Quickstart: build the simulated server, generate the lookup table, and
// run the paper's LUT fan controller against a load step — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	leakctl "repro"
)

func main() {
	cfg := leakctl.T3Config()

	// 1. Build the utilization → optimal-fan-speed table (Section IV/V).
	table, err := leakctl.BuildLUT(cfg, leakctl.DefaultLUTBuild())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lookup table (optimal fan speed per utilization):")
	fmt.Println(table)

	// 2. Deploy the LUT controller on a simulated server.
	ctrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := leakctl.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Drive a load step: idle → 100% at t=5min → idle at t=25min.
	fmt.Println("running a 40-minute load step under the LUT controller...")
	srv.ResetAccounting()
	for now := 0.0; now < 40*60; now++ {
		switch {
		case now < 5*60:
			srv.SetLoad(0)
		case now < 25*60:
			srv.SetLoad(100)
		default:
			srv.SetLoad(0)
		}
		dec := ctrl.Tick(leakctl.Observation{
			Now:         srv.Now(),
			Utilization: srv.Utilization(),
			CurrentRPM:  srv.Fans().Target(),
		})
		if dec.Changed {
			srv.Fans().SetAll(dec.Target)
			fmt.Printf("  t=%5.1f min: fan → %v (utilization %v)\n",
				now/60, dec.Target, srv.Utilization())
		}
		srv.Step(1)
	}

	// 4. Report.
	fmt.Printf("\nenergy consumed:   %.4f kWh\n", srv.Energy().KWh())
	fmt.Printf("fan energy:        %.4f kWh\n", srv.FanEnergy().KWh())
	fmt.Printf("peak power:        %v\n", srv.PeakPower())
	fmt.Printf("final CPU temp:    %v (reliability target 75°C)\n", srv.MaxCPUTemp())
}
