// Shell workload: the paper's Test-4 — a stochastic utilization trace from
// an M/M/c queue with Poisson arrivals and exponential service times —
// evaluated under all three controllers. This is the workload the paper's
// introduction motivates: real machines do not run constant loads.
package main

import (
	"fmt"
	"log"
	"os"

	leakctl "repro"
)

func main() {
	cfg := leakctl.T3Config()
	ec := leakctl.DefaultEval()

	tests, err := leakctl.TestWorkloads(2026)
	if err != nil {
		log.Fatal(err)
	}
	shell := tests[3] // Test-4
	fmt.Printf("workload: %s (80 minutes)\n\n", shell.Name)

	table, err := leakctl.BuildLUT(cfg, leakctl.DefaultLUTBuild())
	if err != nil {
		log.Fatal(err)
	}
	bang, err := leakctl.NewBangBangController(leakctl.DefaultBangBang())
	if err != nil {
		log.Fatal(err)
	}
	lutCtrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
	if err != nil {
		log.Fatal(err)
	}

	controllers := []leakctl.Controller{
		leakctl.NewDefaultController(),
		bang,
		lutCtrl,
	}

	var results []leakctl.RunResult
	for _, ctrl := range controllers {
		res, err := leakctl.RunControlled(cfg, shell.Profile, ctrl, ec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	base := results[0].EnergyKWh
	fmt.Printf("%-10s %-12s %-10s %-9s %-8s %-7s\n",
		"control", "energy(kWh)", "vs default", "peak(W)", "maxT(°C)", "avgRPM")
	for _, res := range results {
		fmt.Printf("%-10s %-12.4f %+9.2f%%  %-9.0f %-8.1f %-7.0f\n",
			res.Controller, res.EnergyKWh,
			100*(res.EnergyKWh-base)/base,
			res.PeakPowerW, res.MaxTempC, res.AvgRPM)
	}

	// Render the utilization and temperature of the LUT run so the
	// stochastic shape is visible.
	lut := results[2]
	fmt.Println()
	c := leakctl.Chart{
		Title:  "LUT controller on the shell workload",
		XLabel: "time (min)",
		YLabel: "°C / %util",
		Height: 16,
		Series: []leakctl.Series{
			{Name: "CPU temperature (°C)", X: lut.TimeMin, Y: lut.TempC},
			{Name: "utilization (%)", X: lut.TimeMin, Y: lut.UtilPct},
		},
	}
	if err := c.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
