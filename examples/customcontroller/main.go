// Custom controller: implementing a new fan-control policy against the
// public Controller interface and benchmarking it against the paper's LUT
// controller on the Test-2 periodic workload.
//
// The example policy is a proportional controller on temperature error —
// smoother than bang-bang, but still reactive, so it inherits bang-bang's
// late-reaction weakness the paper discusses.
package main

import (
	"fmt"
	"log"

	leakctl "repro"
)

// Proportional steers the fan speed proportionally to the deviation from a
// temperature setpoint. It satisfies leakctl.Controller.
type Proportional struct {
	Setpoint leakctl.Celsius
	Gain     float64 // RPM per °C of error
	Period   float64 // decision period, seconds
	nextDue  float64
	started  bool
}

// Name implements Controller.
func (p *Proportional) Name() string { return "P-control" }

// Reset implements Controller.
func (p *Proportional) Reset() { p.nextDue = 0; p.started = false }

// Tick implements Controller.
func (p *Proportional) Tick(obs leakctl.Observation) leakctl.Decision {
	if !p.started {
		p.started = true
		p.nextDue = obs.Now
	}
	if obs.Now < p.nextDue {
		return leakctl.Decision{Target: obs.CurrentRPM}
	}
	p.nextDue = obs.Now + p.Period

	errC := float64(obs.MaxCPUTemp - p.Setpoint)
	target := obs.CurrentRPM + leakctl.RPM(p.Gain*errC)
	if target < 1800 {
		target = 1800
	}
	if target > 4200 {
		target = 4200
	}
	// Quantize to the fan bank's discrete 600 RPM levels.
	target = leakctl.RPM(600 * int((float64(target)+300)/600))
	if target < 1800 {
		target = 1800
	}
	if target == obs.CurrentRPM {
		return leakctl.Decision{Target: obs.CurrentRPM}
	}
	return leakctl.Decision{Target: target, Changed: true}
}

func main() {
	cfg := leakctl.T3Config()
	ec := leakctl.DefaultEval()

	tests, err := leakctl.TestWorkloads(7)
	if err != nil {
		log.Fatal(err)
	}
	test2 := tests[1]

	table, err := leakctl.BuildLUT(cfg, leakctl.DefaultLUTBuild())
	if err != nil {
		log.Fatal(err)
	}
	lutCtrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
	if err != nil {
		log.Fatal(err)
	}
	pCtrl := &Proportional{Setpoint: 70, Gain: 60, Period: 10}

	fmt.Printf("workload: %s\n\n", test2.Name)
	fmt.Printf("%-10s %-12s %-9s %-9s %-6s %-7s\n",
		"control", "energy(kWh)", "peak(W)", "maxT(°C)", "#fan", "avgRPM")
	for _, ctrl := range []leakctl.Controller{lutCtrl, pCtrl} {
		res, err := leakctl.RunControlled(cfg, test2.Profile, ctrl, ec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12.4f %-9.0f %-9.1f %-6d %-7.0f\n",
			res.Controller, res.EnergyKWh, res.PeakPowerW, res.MaxTempC,
			res.FanChanges, res.AvgRPM)
	}
	fmt.Println("\nThe proactive LUT policy needs no temperature feedback at all —")
	fmt.Println("it anticipates thermal events from utilization, as Section V argues.")
}
