package leakctl_test

import (
	"fmt"

	leakctl "repro"
)

// Example demonstrates the central result of the paper: the lookup table
// of optimal fan speeds per utilization level, with the Fig. 2(a) optimum
// of 2400 RPM at 100% load.
func Example() {
	table, err := leakctl.BuildLUT(leakctl.T3Config(), leakctl.DefaultLUTBuild())
	if err != nil {
		panic(err)
	}
	idle, _ := table.Lookup(0)
	full, _ := table.Lookup(100)
	fmt.Printf("idle: %v, full load: %v\n", idle, full)
	// Output:
	// idle: 1800RPM, full load: 2400RPM
}

// ExampleSteadyTemp shows the calibrated Fig. 1(a) anchor: at 1800 RPM and
// 100% utilization the server settles near 85 °C.
func ExampleSteadyTemp() {
	temp, err := leakctl.SteadyTemp(leakctl.T3Config(), 100, 1800)
	if err != nil {
		panic(err)
	}
	fmt.Printf("steady state within Fig 1(a) band: %v\n", temp > 80 && temp < 90)
	// Output:
	// steady state within Fig 1(a) band: true
}

// ExampleFig2a reproduces the convex fan+leakage tradeoff and its optimum.
func ExampleFig2a() {
	curve, err := leakctl.Fig2a(leakctl.T3Config())
	if err != nil {
		panic(err)
	}
	opt, err := curve.Optimum()
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimum fan speed: %v\n", opt.RPM)
	// Output:
	// optimum fan speed: 2400RPM
}

// ExampleNewLUTController shows a single proactive control decision: a
// utilization spike immediately selects the table's fan speed, before any
// temperature rises.
func ExampleNewLUTController() {
	table, err := leakctl.BuildLUT(leakctl.T3Config(), leakctl.DefaultLUTBuild())
	if err != nil {
		panic(err)
	}
	ctrl, err := leakctl.NewLUTController(table, leakctl.DefaultLUT())
	if err != nil {
		panic(err)
	}
	dec := ctrl.Tick(leakctl.Observation{Now: 0, Utilization: 95, CurrentRPM: 3300})
	fmt.Printf("changed=%v target=%v\n", dec.Changed, dec.Target)
	// Output:
	// changed=true target=2400RPM
}
